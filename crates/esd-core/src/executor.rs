//! The multi-job executor: many synthesis jobs, one machine.
//!
//! The paper's end state is a debugging *service*: developers submit bug
//! reports and ESD synthesizes a failing execution for each one. A
//! [`SynthesisSession`] is one resumable job; a
//! [`Portfolio`](crate::Portfolio) races N configurations over *one* job.
//! The [`JobExecutor`] is the layer above both: it holds N independent jobs
//! at once — each a session, or a per-job portfolio of member sessions — and
//! time-slices them under a pluggable [`FairnessPolicy`]:
//!
//! * [`RoundRobin`] — every runnable job gets an equal slice in submit
//!   order;
//! * [`WeightedByPriority`] — round-robin turns, but a job's slice scales
//!   with its [`JobSpec::priority`];
//! * [`DeadlineFirst`] — the runnable job with the earliest scheduling
//!   deadline is served first and receives enlarged slices; jobs without a
//!   deadline only run when no deadline-bearing job is runnable.
//!
//! The caller drives the executor explicitly — [`JobExecutor::submit`],
//! [`JobExecutor::run_slice`] / [`JobExecutor::run_until_idle`],
//! [`JobExecutor::poll`], [`JobExecutor::cancel`],
//! [`JobExecutor::take`] — and can observe every job through a per-job
//! [`Observer`] fan-out plus aggregate [`ExecutorStats`].
//!
//! **Determinism contract.** Jobs are independent engines: slicing happens
//! only at [`Engine::step_round`](esd_symex::Engine::step_round) boundaries
//! and the executor shares nothing between jobs, so a job's synthesized
//! execution file is byte-identical whether the job ran solo or interleaved
//! with any number of other jobs, at any engine thread count (pinned by the
//! `tests/executor.rs` integration suite and the CI determinism matrix).
//!
//! **Admission control.** [`JobExecutor::max_running`] bounds how many jobs
//! hold live sessions at once; excess submissions wait in a FIFO queue and
//! are admitted (paying their static phase then) as running jobs finish.
//!
//! There is exactly one time-slicing loop in the codebase:
//! [`Portfolio::run`](crate::Portfolio::run) is a thin wrapper that submits
//! a single job whose members are the portfolio members.

use crate::journal::{self, JournalRecord, JournalWriter, RecoveryError};
use crate::portfolio::{MemberOutcome, MemberReport, PortfolioResult, PortfolioWinner};
use crate::session::{Observer, SessionSnapshot, SessionStatus, SynthesisSession};
use crate::snapshot::{load_snapshot, save_snapshot, SnapshotError};
use crate::synth::EsdOptions;
use esd_analysis::StaticAnalysis;
use esd_ir::Program;
use esd_symex::GoalSpec;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many search rounds one dispatched slice advances by default
/// (overridable via [`JobExecutor::slice_rounds`]; policies may scale it).
pub const DEFAULT_SLICE_ROUNDS: u64 = 1024;

/// The slice enlargement [`DeadlineFirst`] grants deadline-bearing jobs.
pub const DEADLINE_SLICE_BOOST: u64 = 4;

/// How many dispatched slices a durable executor runs between checkpoints
/// by default (overridable via [`JobExecutor::checkpoint_every`]).
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 32;

/// An opaque ticket identifying a submitted job.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct JobHandle(u64);

impl JobHandle {
    /// The handle's numeric id (handles are assigned densely in submit
    /// order, so ids double as FIFO positions).
    pub fn id(&self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from its numeric id — for layers (like the
    /// service front door) that carry ids across a process boundary. The
    /// id is only meaningful against the executor that assigned it.
    pub fn from_id(id: u64) -> Self {
        JobHandle(id)
    }
}

/// One job submitted to a [`JobExecutor`]: a program, a goal, and one or
/// more member configurations (several members make the job a per-job
/// portfolio — the first member to synthesize wins the job).
pub struct JobSpec {
    label: String,
    program: Arc<Program>,
    goal: GoalSpec,
    members: Vec<(String, EsdOptions)>,
    priority: u32,
    deadline: Option<Duration>,
    observer: Option<Box<dyn Observer>>,
}

impl JobSpec {
    /// A job for one bug: `label` names it in stats and logs. Without
    /// further configuration the job runs a single member with default
    /// [`EsdOptions`].
    pub fn new(label: impl Into<String>, program: &Program, goal: GoalSpec) -> Self {
        JobSpec {
            label: label.into(),
            program: Arc::new(program.clone()),
            goal,
            members: Vec::new(),
            priority: 1,
            deadline: None,
            observer: None,
        }
    }

    /// Replaces the member set with a single member running `options`.
    pub fn options(mut self, options: EsdOptions) -> Self {
        let label = options.frontier.to_string();
        self.members = vec![(label, options)];
        self
    }

    /// Adds a member configuration (several members race portfolio-style
    /// within the job; the first `Found` wins and the rest are cancelled
    /// immediately).
    pub fn member(mut self, label: impl Into<String>, options: EsdOptions) -> Self {
        self.members.push((label.into(), options));
        self
    }

    /// Scheduling weight for [`WeightedByPriority`] (default 1; larger
    /// means proportionally larger slices).
    pub fn priority(mut self, priority: u32) -> Self {
        self.priority = priority.max(1);
        self
    }

    /// Scheduling deadline for [`DeadlineFirst`], measured from submission.
    ///
    /// This is a *fairness hint* — it orders jobs and enlarges their slices;
    /// it does not expire the job. To kill a job at a wall-clock limit, set
    /// [`EsdOptions::deadline`] on its member options.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a per-job [`Observer`]: it receives an
    /// [`Observer::on_progress`] snapshot of the advanced member after every
    /// dispatched slice that leaves the job running (matching the session
    /// observer's running-only progress cadence — a job that goes terminal
    /// on its very first slice emits no progress events), and exactly one
    /// [`Observer::on_finish`] with the job's terminal [`SessionStatus`]
    /// (the winner's `Found`, or the first member's terminal status when no
    /// member won).
    pub fn observer(mut self, observer: Box<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }
}

/// Where a job currently is in its lifecycle.
///
/// This is the executor's *internal* lifecycle value (still carried by
/// [`JobStat`] and snapshots); the public query surface is the richer
/// [`JobStatus`] returned by [`JobExecutor::status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum JobPhase {
    /// Submitted, waiting for admission (no sessions exist yet).
    Queued,
    /// Admitted: the job holds live sessions and receives slices.
    Running,
    /// Terminal: an outcome is available via [`JobExecutor::take`].
    Finished,
}

/// Aggregate progress of one running job, summed over its members — the
/// payload of [`JobStatus::Running`] and the event the service layer streams
/// to [`subscribe`]rs as wire messages.
///
/// [`subscribe`]: JobStatus
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct JobProgress {
    /// Executor slices dispatched to the job so far.
    pub slices: u64,
    /// Search rounds advanced so far, summed over the job's members.
    pub rounds: u64,
    /// Instructions executed, summed over the job's members.
    pub steps: u64,
    /// Live execution states, summed over the job's members.
    pub live_states: u64,
    /// The best (lowest) final-goal proximity any member has seen, if a
    /// priority-driven frontier computed one.
    pub best_proximity: Option<u64>,
}

/// The one job-status surface: where a job is and, once terminal, how it
/// ended. Returned by [`JobExecutor::status`], by the `Service` front door,
/// and sent verbatim over the wire protocol — the same enum at every layer.
///
/// This collapses the old `poll()`/`outcome()` split ([`JobPhase`] +
/// [`JobVerdict`] + `Option<&JobOutcome>`) into a single type; the full
/// [`JobOutcome`] (with the synthesized execution) is still *extracted* with
/// [`JobExecutor::take`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum JobStatus {
    /// Submitted, waiting for admission.
    Queued,
    /// Admitted and receiving slices; carries the job's aggregate progress.
    Running {
        /// Aggregate progress summed over the job's members.
        progress: JobProgress,
    },
    /// Terminal: the job ran to a verdict ([`JobVerdict::Found`] or
    /// [`JobVerdict::Unsatisfied`]); the outcome is (or was) available via
    /// [`JobExecutor::take`].
    Finished {
        /// How the job ended.
        verdict: JobVerdict,
    },
    /// Terminal: the job was cancelled before reaching a verdict.
    Cancelled,
}

impl JobStatus {
    /// True once the job can no longer advance (finished or cancelled).
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Finished { .. } | JobStatus::Cancelled)
    }

    /// The terminal verdict, if any ([`JobStatus::Cancelled`] reports
    /// [`JobVerdict::Cancelled`]).
    pub fn verdict(&self) -> Option<JobVerdict> {
        match self {
            JobStatus::Queued | JobStatus::Running { .. } => None,
            JobStatus::Finished { verdict } => Some(*verdict),
            JobStatus::Cancelled => Some(JobVerdict::Cancelled),
        }
    }

    /// The running progress, if the job is currently running.
    pub fn progress(&self) -> Option<&JobProgress> {
        match self {
            JobStatus::Running { progress } => Some(progress),
            _ => None,
        }
    }
}

/// How a job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum JobVerdict {
    /// A member synthesized the execution.
    Found,
    /// Every member went terminal without reaching the goal (exhausted,
    /// budget, or deadline-expired).
    Unsatisfied,
    /// [`JobExecutor::cancel`] stopped the job.
    Cancelled,
}

/// The terminal result of one job.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct JobOutcome {
    /// The handle the job was submitted under.
    pub handle: JobHandle,
    /// The job's label.
    pub label: String,
    /// How the job ended.
    pub verdict: JobVerdict,
    /// The portfolio-shaped detail: the winning member (if any) with its
    /// synthesized execution, plus every member's outcome and statistics.
    /// Single-member jobs have exactly one member entry.
    pub result: PortfolioResult,
    /// Executor slices dispatched to this job.
    pub slices: u64,
    /// Search rounds the job actually advanced, summed over members.
    pub rounds: u64,
    /// Wall-clock time from admission (start of the job's static phase) to
    /// the terminal state. Zero for jobs cancelled while still queued.
    pub wall: Duration,
}

impl JobOutcome {
    /// The winning member's synthesis report, if the job was satisfied.
    pub fn report(&self) -> Option<&crate::synth::SynthesisReport> {
        self.result.report()
    }
}

/// A scheduling view of one runnable job, handed to the
/// [`FairnessPolicy`]. Views are listed in submit order.
#[derive(Debug, Clone)]
pub struct JobView {
    /// The job's handle (dense ids; submit order).
    pub handle: JobHandle,
    /// Scheduling weight ([`JobSpec::priority`], ≥ 1).
    pub priority: u32,
    /// Absolute scheduling deadline, if the job has one
    /// (submission instant + [`JobSpec::deadline`]).
    pub deadline_at: Option<Instant>,
    /// Executor slices already dispatched to this job.
    pub slices: u64,
}

/// Picks which runnable job receives the next slice, and how large the
/// slice is.
///
/// `jobs` is non-empty and listed in submit order; the returned index must
/// be within it. Policies are deterministic functions of the views and
/// their own state — the executor never consults wall-clock time to
/// schedule, so a test can rely on the dispatch order. Policies are `Send`
/// so a whole executor (and the daemon wrapping one) can move to a server
/// thread.
pub trait FairnessPolicy: Send {
    /// Returns `(index into jobs, slice length in rounds)` for the next
    /// dispatch; `base_rounds` is the executor's configured slice length.
    fn next_slice(&mut self, jobs: &[JobView], base_rounds: u64) -> (usize, u64);

    /// The policy's display name (stats, bench output). Also the key a
    /// durable executor's snapshot stores to rebuild the policy at
    /// [`JobExecutor::recover`] time (recovery supports the three built-in
    /// policies).
    fn name(&self) -> &'static str;

    /// The rotation cursor of round-robin-style policies — the handle most
    /// recently served — captured into [`ExecutorSnapshot`]s. Policies
    /// without rotation state return `None` (the default).
    fn rotation(&self) -> Option<JobHandle> {
        None
    }

    /// Restores a cursor captured by [`FairnessPolicy::rotation`] (default:
    /// no-op, for policies without rotation state).
    fn set_rotation(&mut self, _last: Option<JobHandle>) {}
}

/// Equal slices, submit order, cycling over the runnable jobs.
#[derive(Debug, Default)]
pub struct RoundRobin {
    last: Option<JobHandle>,
}

/// The next runnable job strictly after `last` in handle order, wrapping to
/// the front — the rotation survives jobs finishing or being admitted
/// mid-cycle because it keys on handles, not indices.
fn next_after(jobs: &[JobView], last: Option<JobHandle>) -> usize {
    match last {
        Some(last) => jobs.iter().position(|j| j.handle > last).unwrap_or(0),
        None => 0,
    }
}

impl FairnessPolicy for RoundRobin {
    fn next_slice(&mut self, jobs: &[JobView], base_rounds: u64) -> (usize, u64) {
        let idx = next_after(jobs, self.last);
        self.last = Some(jobs[idx].handle);
        (idx, base_rounds)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn rotation(&self) -> Option<JobHandle> {
        self.last
    }

    fn set_rotation(&mut self, last: Option<JobHandle>) {
        self.last = last;
    }
}

/// Round-robin turn order, but a job's slice length is
/// `base_rounds × priority` — a priority-8 job advances eight times as many
/// rounds per turn as a priority-1 job.
#[derive(Debug, Default)]
pub struct WeightedByPriority {
    last: Option<JobHandle>,
}

impl FairnessPolicy for WeightedByPriority {
    fn next_slice(&mut self, jobs: &[JobView], base_rounds: u64) -> (usize, u64) {
        let idx = next_after(jobs, self.last);
        self.last = Some(jobs[idx].handle);
        (idx, base_rounds.saturating_mul(u64::from(jobs[idx].priority)))
    }

    fn name(&self) -> &'static str {
        "weighted-by-priority"
    }

    fn rotation(&self) -> Option<JobHandle> {
        self.last
    }

    fn set_rotation(&mut self, last: Option<JobHandle>) {
        self.last = last;
    }
}

/// Earliest-deadline-first: the runnable job with the earliest
/// [`JobView::deadline_at`] is always served next, with its slice enlarged
/// [`DEADLINE_SLICE_BOOST`]-fold; jobs without a deadline share leftover
/// capacity round-robin (they run only when no deadline job is runnable).
#[derive(Debug, Default)]
pub struct DeadlineFirst {
    last: Option<JobHandle>,
}

impl FairnessPolicy for DeadlineFirst {
    fn next_slice(&mut self, jobs: &[JobView], base_rounds: u64) -> (usize, u64) {
        let urgent = jobs
            .iter()
            .enumerate()
            .filter_map(|(i, j)| j.deadline_at.map(|d| (d, j.handle, i)))
            .min();
        match urgent {
            Some((_, _, idx)) => (idx, base_rounds.saturating_mul(DEADLINE_SLICE_BOOST)),
            None => {
                let idx = next_after(jobs, self.last);
                self.last = Some(jobs[idx].handle);
                (idx, base_rounds)
            }
        }
    }

    fn name(&self) -> &'static str {
        "deadline-first"
    }

    fn rotation(&self) -> Option<JobHandle> {
        self.last
    }

    fn set_rotation(&mut self, last: Option<JobHandle>) {
        self.last = last;
    }
}

/// A point-in-time summary of one job, part of [`ExecutorStats`].
#[derive(Debug, Clone)]
pub struct JobStat {
    /// The job's handle.
    pub handle: JobHandle,
    /// The job's label.
    pub label: String,
    /// Where the job is in its lifecycle.
    pub phase: JobPhase,
    /// Executor slices dispatched to the job so far.
    pub slices: u64,
    /// Search rounds advanced so far, summed over the job's members.
    pub rounds: u64,
    /// Wall-clock time the job has been live (admission → now, or
    /// admission → finish once terminal; zero while queued).
    pub wall: Duration,
}

/// Aggregate statistics of a [`JobExecutor`].
#[derive(Debug, Clone)]
pub struct ExecutorStats {
    /// Jobs submitted over the executor's lifetime.
    pub submitted: u64,
    /// Jobs currently waiting for admission.
    pub queued: usize,
    /// Jobs currently holding live sessions.
    pub running: usize,
    /// Jobs that reached a terminal state (including cancellations).
    pub finished: u64,
    /// Terminal jobs that were cancelled.
    pub cancelled: u64,
    /// Slices dispatched over the executor's lifetime.
    pub slices_dispatched: u64,
    /// Search rounds actually advanced over the executor's lifetime.
    pub rounds_dispatched: u64,
    /// Per-job detail (every job ever submitted, in submit order),
    /// including the wall time of each running or finished job.
    pub jobs: Vec<JobStat>,
}

/// One admitted member: its configuration plus its live session.
struct MemberSlot {
    label: String,
    options: EsdOptions,
    session: SynthesisSession,
}

/// A queued job's not-yet-admitted ingredients: program, goal, member
/// configurations.
type PendingJob = (Arc<Program>, GoalSpec, Vec<(String, EsdOptions)>);

/// Internal per-job bookkeeping.
struct JobSlot {
    label: String,
    /// `Some` while the job is queued; taken at admission.
    pending: Option<PendingJob>,
    members: Vec<MemberSlot>,
    observer: Option<Box<dyn Observer>>,
    priority: u32,
    deadline_at: Option<Instant>,
    admitted_at: Option<Instant>,
    next_member: usize,
    slices: u64,
    phase: JobPhase,
    outcome: Option<JobOutcome>,
    /// Terminal totals, frozen at finalize so [`JobExecutor::stats`] and
    /// [`JobExecutor::status`] stay exact after the outcome has been
    /// [`take`](JobExecutor::take)n.
    finished_rounds: u64,
    finished_wall: Duration,
    finished_verdict: Option<JobVerdict>,
}

impl JobSlot {
    fn rounds(&self) -> u64 {
        match self.phase {
            JobPhase::Finished => self.finished_rounds,
            _ => self.members.iter().map(|m| m.session.rounds()).sum(),
        }
    }

    fn wall(&self) -> Duration {
        match self.phase {
            JobPhase::Finished => self.finished_wall,
            _ => self.admitted_at.map(|t| t.elapsed()).unwrap_or_default(),
        }
    }

    /// Aggregate progress over the job's members (running jobs only).
    fn progress(&self) -> JobProgress {
        let mut progress = JobProgress {
            slices: self.slices,
            rounds: self.rounds(),
            steps: 0,
            live_states: 0,
            best_proximity: None,
        };
        for member in &self.members {
            let event = member.session.progress_event();
            progress.steps += event.steps;
            progress.live_states += event.live_states as u64;
            progress.best_proximity = match (progress.best_proximity, event.best_proximity) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        progress
    }
}

/// The not-yet-admitted ingredients of a queued job as serialized in a
/// snapshot: its program, goal and member configurations (see
/// [`JobSnapshot::pending`]).
pub type PendingJobSnapshot = (Program, GoalSpec, Vec<(String, EsdOptions)>);

/// The durable state of one job slot, part of an [`ExecutorSnapshot`].
///
/// Wall-clock anchors are stored relative to the checkpoint instant
/// (`deadline_rel_nanos`, `admitted_elapsed`) and rebased to a common *now*
/// at restore, so the relative ordering [`DeadlineFirst`] depends on — and
/// every session's deadline accounting — survives the crash.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct JobSnapshot {
    /// The job's label.
    pub label: String,
    /// Queued jobs: the not-yet-admitted ingredients (program, goal,
    /// member configurations).
    pub pending: Option<PendingJobSnapshot>,
    /// Running jobs: each member's label and complete session snapshot
    /// (which embeds the program, options and engine state).
    pub members: Vec<(String, SessionSnapshot)>,
    /// The job's scheduling priority.
    pub priority: u32,
    /// The scheduling deadline relative to the checkpoint instant, in
    /// nanoseconds (negative once the deadline has passed).
    pub deadline_rel_nanos: Option<i64>,
    /// How long the job had been admitted when the checkpoint was taken.
    pub admitted_elapsed: Option<Duration>,
    /// The member the next slice goes to.
    pub next_member: usize,
    /// Executor slices dispatched to the job.
    pub slices: u64,
    /// The job's lifecycle phase.
    pub phase: JobPhase,
    /// The terminal outcome, if finished and not yet taken.
    pub outcome: Option<JobOutcome>,
    /// Terminal round totals frozen when the job was finalized.
    pub finished_rounds: u64,
    /// Terminal wall-clock total frozen at finalize.
    pub finished_wall: Duration,
    /// The terminal verdict frozen at finalize (survives `take`).
    pub finished_verdict: Option<JobVerdict>,
}

/// The complete durable state of a [`JobExecutor`], written at every
/// checkpoint and consumed by [`JobExecutor::recover`] /
/// [`Recovery::replay`](crate::journal::Recovery::replay).
///
/// Observers are deliberately absent: they are live callbacks, not state.
/// A recovered executor runs without them.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ExecutorSnapshot {
    /// The fairness policy's [`name`](FairnessPolicy::name).
    pub policy: String,
    /// The policy's rotation cursor ([`FairnessPolicy::rotation`]).
    pub rotation: Option<u64>,
    /// The configured base slice length in rounds.
    pub base_slice: u64,
    /// The admission cap.
    pub max_running: usize,
    /// The checkpoint cadence in dispatched slices.
    pub checkpoint_every: u64,
    /// How many distinct jobs one planned batch may grant slices to
    /// ([`JobExecutor::batch_width`]) — semantic scheduling state, so replay
    /// plans the identical batches.
    pub batch_width: usize,
    /// The executor's worker-pool size ([`JobExecutor::pool_size`]).
    /// Execution resource only — it never affects what is scheduled or
    /// synthesized — but restored so a recovered executor keeps its
    /// parallelism.
    pub pool_size: usize,
    /// The journal epoch this snapshot pairs with: recovery replays
    /// `journal-<epoch>.log` and ignores journals of other epochs.
    pub epoch: u64,
    /// Slices dispatched over the executor's lifetime.
    pub slices_dispatched: u64,
    /// Search rounds advanced over the executor's lifetime.
    pub rounds_dispatched: u64,
    /// Jobs cancelled over the executor's lifetime.
    pub cancelled: u64,
    /// Every job slot, in handle order.
    pub jobs: Vec<JobSnapshot>,
}

/// The live half of a durable executor: where the snapshot and journal go,
/// the open journal writer, and the checkpoint countdown.
struct Durability {
    dir: PathBuf,
    journal: JournalWriter,
    epoch: u64,
    slices_since_checkpoint: u64,
}

/// The snapshot file name inside a durable directory.
const SNAPSHOT_FILE: &str = "snapshot.json";

/// The journal file name for a given epoch.
fn journal_file(epoch: u64) -> String {
    format!("journal-{epoch}.log")
}

/// Holds N independent synthesis jobs and time-slices them under a
/// [`FairnessPolicy`] — the multi-job debugging service of the module docs.
pub struct JobExecutor {
    policy: Box<dyn FairnessPolicy>,
    base_slice: u64,
    max_running: usize,
    checkpoint_every: u64,
    /// How many distinct jobs one planned batch may grant slices to.
    /// Semantic: widening the batch changes the scheduling stream (grants
    /// are planned against views frozen at batch start), so it is part of
    /// snapshots and replay.
    batch_width: usize,
    /// Worker threads executing a planned batch's slices. Pure execution
    /// resource: any pool size runs the identical planned grants and merges
    /// them in grant order, so results are byte-identical at any value.
    pool_size: usize,
    slots: Vec<JobSlot>,
    slices_dispatched: u64,
    rounds_dispatched: u64,
    cancelled: u64,
    durable: Option<Durability>,
}

/// One planned batch entry being executed: the granted job's detached
/// member set plus the slice to run. Detaching (`std::mem::take`) gives the
/// worker pool exclusive ownership of each granted job's sessions without
/// aliasing the executor.
struct SliceTask {
    idx: usize,
    rounds: u64,
    members: Vec<MemberSlot>,
    next_member: usize,
    run: Option<SliceRun>,
}

impl SliceTask {
    /// Runs the granted slice on this task's detached members (on whichever
    /// worker thread the pool put it).
    fn execute(&mut self) {
        self.run = run_member_slice(&mut self.members, self.next_member, self.rounds);
    }
}

/// What one executed slice did: which member advanced, by how many rounds,
/// and whether it won the job.
struct SliceRun {
    offset: usize,
    advanced: u64,
    won: bool,
}

/// Advances the job's next runnable member by `rounds`; `None` when every
/// member is already terminal. Runs on worker threads — it touches nothing
/// but the job's own members, which is why cross-job parallelism cannot
/// perturb results.
fn run_member_slice(
    members: &mut [MemberSlot],
    next_member: usize,
    rounds: u64,
) -> Option<SliceRun> {
    let n = members.len();
    let offset =
        (0..n).map(|o| (next_member + o) % n).find(|&m| members[m].session.poll().is_running())?;
    let member = &mut members[offset];
    let before = member.session.rounds();
    let won = member.session.run_for(rounds).found().is_some();
    Some(SliceRun { offset, advanced: member.session.rounds() - before, won })
}

// The worker pool moves whole sessions across threads; keep the contract
// explicit so a non-Send regression fails here, not in a distant scope.
const _: () = {
    fn assert_send<T: Send>() {}
    #[allow(dead_code)]
    fn check() {
        assert_send::<MemberSlot>();
    }
};

impl JobExecutor {
    /// An executor scheduling with the given policy.
    pub fn new(policy: Box<dyn FairnessPolicy>) -> Self {
        JobExecutor {
            policy,
            base_slice: DEFAULT_SLICE_ROUNDS,
            max_running: usize::MAX,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            batch_width: 1,
            pool_size: 1,
            slots: Vec::new(),
            slices_dispatched: 0,
            rounds_dispatched: 0,
            cancelled: 0,
            durable: None,
        }
    }

    /// A [`RoundRobin`] executor.
    pub fn round_robin() -> Self {
        JobExecutor::new(Box::<RoundRobin>::default())
    }

    /// A [`WeightedByPriority`] executor.
    pub fn weighted_by_priority() -> Self {
        JobExecutor::new(Box::<WeightedByPriority>::default())
    }

    /// A [`DeadlineFirst`] executor.
    pub fn deadline_first() -> Self {
        JobExecutor::new(Box::<DeadlineFirst>::default())
    }

    /// Sets the base slice length in search rounds (policies may scale it;
    /// clamped to ≥ 1).
    pub fn slice_rounds(mut self, rounds: u64) -> Self {
        self.base_slice = rounds.max(1);
        self
    }

    /// Admission control: at most `n` jobs hold live sessions at once;
    /// excess submissions wait in FIFO order (clamped to ≥ 1).
    ///
    /// Admission order is FIFO regardless of the fairness policy — policies
    /// only arbitrate between *admitted* jobs, so under a tight cap even a
    /// [`DeadlineFirst`] executor makes a deadline-bearing job wait behind
    /// earlier running jobs. Size the cap for the urgency mix you expect.
    pub fn max_running(mut self, n: usize) -> Self {
        self.max_running = n.max(1);
        self
    }

    /// How many *distinct* jobs one planned batch grants slices to (default
    /// 1 — the classic one-grant-per-slice loop; clamped to ≥ 1). The batch
    /// is planned upfront against the runnable set frozen at batch start
    /// (the policy is consulted once per grant, already-granted jobs
    /// removed), so the scheduling stream is a function of the width alone —
    /// never of the pool size executing it. Width is semantic scheduling
    /// state: it is journaled and snapshotted so recovery replans the
    /// identical batches.
    pub fn batch_width(mut self, n: usize) -> Self {
        self.batch_width = n.max(1);
        self
    }

    /// Worker threads executing a planned batch across jobs (default 1 —
    /// all slices run inline; `0` resolves to the machine's available
    /// parallelism). Purely an execution resource: every pool size runs the
    /// identical planned grants and merges results in grant order, so a
    /// job's synthesized execution file — and every executor statistic — is
    /// byte-identical at any pool size (pinned by `tests/executor.rs` and
    /// the CI `ESD_POOL` matrix). Cross-job parallelism composes with the
    /// engine's own per-job worker pool ([`EsdOptions::threads`]).
    pub fn pool_size(mut self, n: usize) -> Self {
        self.pool_size = if n == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            n
        };
        self
    }

    /// Checkpoint cadence for durable executors: a fresh
    /// [`ExecutorSnapshot`] is written (and the journal truncated) every `n`
    /// dispatched slices (clamped to ≥ 1; default
    /// [`DEFAULT_CHECKPOINT_EVERY`]). A smaller `n` bounds replay work after
    /// a crash at the price of more snapshot I/O — the trade-off the
    /// executor bench quantifies.
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = n.max(1);
        self
    }

    /// Makes the executor durable: every state-changing decision is
    /// journaled to `dir` (write-ahead, length+checksum framed) and a full
    /// checkpoint is written every [`checkpoint_every`](Self::checkpoint_every)
    /// slices, so [`JobExecutor::recover`] can rebuild the executor after a
    /// crash. The directory is created if absent; an initial checkpoint is
    /// written immediately so the executor is recoverable from the moment
    /// this returns.
    pub fn durable_dir(mut self, dir: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| SnapshotError::Io(e.to_string()))?;
        let journal = JournalWriter::create(&dir.join(journal_file(0)))
            .map_err(|e| SnapshotError::Io(e.to_string()))?;
        self.durable = Some(Durability { dir, journal, epoch: 0, slices_since_checkpoint: 0 });
        self.checkpoint()?;
        Ok(self)
    }

    /// Recovers a crashed durable executor from `dir`: loads the latest
    /// checkpoint, replays the journal's valid prefix (tolerating a torn
    /// final record), truncates any damaged tail, and re-attaches the
    /// durable directory so the recovered executor keeps journaling where
    /// the crashed one stopped. See [`crate::journal`] for the
    /// `reduce(snapshot, journal)` invariant this relies on.
    pub fn recover(dir: impl AsRef<Path>) -> Result<Self, RecoveryError> {
        let dir = dir.as_ref();
        let snapshot: ExecutorSnapshot = load_snapshot(&dir.join(SNAPSHOT_FILE))?;
        let journal_path = dir.join(journal_file(snapshot.epoch));
        let scanned = journal::load(&journal_path)?;
        let mut exec = replay_records(&snapshot, &scanned.records)?;
        if scanned.damage.is_some() {
            // Drop the torn/corrupt tail so appends resume from the last
            // valid frame.
            let bytes =
                std::fs::read(&journal_path).map_err(|e| RecoveryError::Io(e.to_string()))?;
            std::fs::write(&journal_path, &bytes[..scanned.valid_len.min(bytes.len())])
                .map_err(|e| RecoveryError::Io(e.to_string()))?;
        }
        let journal = JournalWriter::open_append(&journal_path)
            .map_err(|e| RecoveryError::Io(e.to_string()))?;
        exec.durable = Some(Durability {
            dir: dir.to_path_buf(),
            journal,
            epoch: snapshot.epoch,
            slices_since_checkpoint: 0,
        });
        Ok(exec)
    }

    /// Submits a job; it becomes runnable at the next
    /// [`run_slice`](JobExecutor::run_slice) (admission permitting). The
    /// static phase is deferred to admission, so queued jobs cost nothing.
    pub fn submit(&mut self, spec: JobSpec) -> JobHandle {
        let handle = JobHandle(self.slots.len() as u64);
        let members = if spec.members.is_empty() {
            let options = EsdOptions::default();
            vec![(options.frontier.to_string(), options)]
        } else {
            spec.members
        };
        if self.durable.is_some() {
            self.journal_append(&JournalRecord::Submit {
                handle: handle.0,
                label: spec.label.clone(),
                program: Program::clone(&spec.program),
                goal: spec.goal.clone(),
                members: members.clone(),
                priority: spec.priority,
                deadline: spec.deadline,
            });
        }
        self.slots.push(JobSlot {
            label: spec.label,
            pending: Some((spec.program, spec.goal, members)),
            members: Vec::new(),
            observer: spec.observer,
            priority: spec.priority,
            deadline_at: spec.deadline.map(|d| Instant::now() + d),
            admitted_at: None,
            next_member: 0,
            slices: 0,
            phase: JobPhase::Queued,
            outcome: None,
            finished_rounds: 0,
            finished_wall: Duration::ZERO,
            finished_verdict: None,
        });
        handle
    }

    /// Submits a whole corpus at once, returning one handle per spec in
    /// submission order. Equivalent to calling
    /// [`submit`](JobExecutor::submit) in a loop; the convenience exists so
    /// corpus producers (the generated-workload harnesses) hand an entire
    /// batch to the policy in one statement.
    pub fn submit_batch(&mut self, specs: Vec<JobSpec>) -> Vec<JobHandle> {
        specs.into_iter().map(|spec| self.submit(spec)).collect()
    }

    /// Submits a corpus, runs the executor to idle, and returns every
    /// outcome in submission order. The executor stays usable afterwards
    /// (statistics accumulate across batches).
    ///
    /// # Panics
    /// If any outcome was already taken — impossible for jobs submitted by
    /// this call, since it takes each exactly once.
    pub fn run_batch(&mut self, specs: Vec<JobSpec>) -> Vec<JobOutcome> {
        let handles = self.submit_batch(specs);
        self.run_until_idle();
        handles
            .into_iter()
            .map(|h| self.take(h).expect("run_until_idle finished every submitted job"))
            .collect()
    }

    /// The job's current [`JobStatus`] — the one status query, shared
    /// verbatim by the executor, the `Service` front door and the wire
    /// protocol. Running jobs carry their aggregate [`JobProgress`];
    /// terminal jobs report their verdict even after the outcome has been
    /// [`take`](JobExecutor::take)n.
    ///
    /// # Panics
    /// On a handle from a different executor.
    pub fn status(&self, handle: JobHandle) -> JobStatus {
        let slot = &self.slots[handle.0 as usize];
        match slot.phase {
            JobPhase::Queued => JobStatus::Queued,
            JobPhase::Running => JobStatus::Running { progress: slot.progress() },
            JobPhase::Finished => {
                match slot.finished_verdict.expect("finished jobs freeze their verdict") {
                    JobVerdict::Cancelled => JobStatus::Cancelled,
                    verdict => JobStatus::Finished { verdict },
                }
            }
        }
    }

    /// The job's current lifecycle phase.
    ///
    /// # Panics
    /// On a handle from a different executor.
    #[deprecated(
        since = "0.1.0",
        note = "use JobExecutor::status — one JobStatus across executor, Service and wire"
    )]
    pub fn poll(&self, handle: JobHandle) -> JobPhase {
        self.slots[handle.0 as usize].phase
    }

    /// The job's terminal outcome, once finished.
    #[deprecated(
        since = "0.1.0",
        note = "use JobExecutor::status for the verdict, JobExecutor::take for the outcome"
    )]
    pub fn outcome(&self, handle: JobHandle) -> Option<&JobOutcome> {
        self.slots[handle.0 as usize].outcome.as_ref()
    }

    /// Removes and returns the job's terminal outcome (subsequent calls
    /// return `None`).
    pub fn take(&mut self, handle: JobHandle) -> Option<JobOutcome> {
        self.slots[handle.0 as usize].outcome.take()
    }

    /// Stops a job: queued jobs are dropped, running jobs have every member
    /// session cancelled (their partial statistics are kept in the
    /// outcome). Returns `true` if the job was still pending or running.
    pub fn cancel(&mut self, handle: JobHandle) -> bool {
        let idx = handle.0 as usize;
        match self.slots[idx].phase {
            JobPhase::Finished => false,
            JobPhase::Queued | JobPhase::Running => {
                if self.durable.is_some() {
                    self.journal_append(&JournalRecord::Cancel { handle: handle.0 });
                }
                self.slots[idx].pending = None;
                self.cancelled += 1;
                self.finalize(idx, JobVerdict::Cancelled);
                true
            }
        }
    }

    /// True while any job is queued or running.
    pub fn has_work(&self) -> bool {
        self.slots.iter().any(|s| s.phase != JobPhase::Finished)
    }

    /// Dispatches one slice *batch*: admits queued jobs up to the admission
    /// cap, plans up to [`batch_width`](Self::batch_width) grants to
    /// distinct runnable jobs, executes them (inline, or across the
    /// [`pool_size`](Self::pool_size) worker pool), and merges the results
    /// in grant order — finalizing any job that reached a terminal state.
    /// Returns `false` when no job is runnable (the executor is idle).
    ///
    /// At the default width of 1 this is exactly the classic
    /// one-grant-per-slice loop.
    pub fn run_slice(&mut self) -> bool {
        self.admit();
        let views = self.runnable_views();
        if views.is_empty() {
            return false;
        }
        let grants = self.plan_batch(&views);
        if self.durable.is_some() {
            // Write-ahead: the whole batch is durable before any slice
            // runs, so a crash mid-batch replays it instead of losing it.
            let record = match grants.as_slice() {
                // Width-1 executors keep the classic per-grant record.
                [(handle, rounds)] if self.batch_width == 1 => {
                    JournalRecord::SliceGrant { handle: *handle, rounds: *rounds }
                }
                _ => JournalRecord::BatchGrant { grants: grants.clone() },
            };
            self.journal_append(&record);
        }
        let dispatched = grants.len() as u64;
        self.execute_batch(&grants);
        if let Some(durable) = &mut self.durable {
            durable.slices_since_checkpoint += dispatched;
        }
        let checkpoint_due = self
            .durable
            .as_ref()
            .is_some_and(|d| d.slices_since_checkpoint >= self.checkpoint_every);
        if checkpoint_due {
            self.checkpoint().expect("durable executor failed to write its checkpoint");
        }
        true
    }

    /// Plans one batch of grants against the runnable views frozen at batch
    /// start: the policy is consulted once per grant with already-granted
    /// jobs removed, so every grant goes to a distinct job and the plan is a
    /// deterministic function of (views, policy state, width) — the pool
    /// size executing it never feeds back into planning.
    fn plan_batch(&mut self, views: &[JobView]) -> Vec<(u64, u64)> {
        let mut remaining = views.to_vec();
        let width = self.batch_width.min(remaining.len()).max(1);
        let mut grants = Vec::with_capacity(width);
        for _ in 0..width {
            if remaining.is_empty() {
                break;
            }
            let (choice, rounds) = self.policy.next_slice(&remaining, self.base_slice);
            let view = remaining.remove(choice.min(remaining.len() - 1));
            grants.push((view.handle.0, rounds.max(1)));
        }
        grants
    }

    /// Executes a planned batch: detaches each granted job's member set,
    /// runs the slices (inline for a pool of 1, chunked over scoped worker
    /// threads otherwise — the calling thread is a worker too), then merges
    /// results strictly in grant order. Jobs share nothing, so execution
    /// order cannot change any result; merge order makes the bookkeeping —
    /// statistics, observer callbacks, finalization — deterministic as well.
    fn execute_batch(&mut self, grants: &[(u64, u64)]) {
        let mut work: Vec<SliceTask> = grants
            .iter()
            .map(|&(handle, rounds)| {
                let slot = &mut self.slots[handle as usize];
                SliceTask {
                    idx: handle as usize,
                    rounds,
                    members: std::mem::take(&mut slot.members),
                    next_member: slot.next_member,
                    run: None,
                }
            })
            .collect();
        let workers = self.pool_size.min(work.len());
        if workers <= 1 {
            for task in &mut work {
                task.execute();
            }
        } else {
            let chunk_size = work.len().div_ceil(workers);
            let mut chunks = work.chunks_mut(chunk_size);
            let first = chunks.next().expect("planned batches are non-empty");
            std::thread::scope(|scope| {
                for chunk in chunks {
                    scope.spawn(move || {
                        for task in chunk {
                            task.execute();
                        }
                    });
                }
                for task in first {
                    task.execute();
                }
            });
        }
        for task in work {
            let slot = &mut self.slots[task.idx];
            slot.members = task.members;
            self.merge_slice(task.idx, task.run);
        }
    }

    /// Merges one executed slice back into the executor (grant order):
    /// updates the dispatch counters, finalizes the job if the slice won or
    /// exhausted every member, and fires the job observer otherwise.
    fn merge_slice(&mut self, idx: usize, run: Option<SliceRun>) {
        let Some(SliceRun { offset, advanced, won }) = run else {
            // Every member already terminal (can only happen via external
            // session manipulation); close the job out.
            self.finalize(idx, JobVerdict::Unsatisfied);
            return;
        };
        let slot = &mut self.slots[idx];
        slot.slices += 1;
        slot.next_member = (offset + 1) % slot.members.len();
        self.slices_dispatched += 1;
        self.rounds_dispatched += advanced;

        if won {
            // The satellite fix the regression tests pin: the moment a
            // member reports Found, the job is finalized and every other
            // member is cancelled — members later in the same scheduling
            // round never receive another slice, so per-member `rounds`
            // statistics stay exactly what each member actually ran.
            self.finalize(idx, JobVerdict::Found);
            return;
        }
        let slot = &mut self.slots[idx];
        if slot.members.iter().all(|m| !m.session.poll().is_running()) {
            self.finalize(idx, JobVerdict::Unsatisfied);
            return;
        }
        // Per-job observer fan-out: a progress snapshot of the member that
        // just advanced, once per dispatched slice.
        let slot = &mut self.slots[idx];
        if let Some(observer) = &mut slot.observer {
            observer.on_progress(&slot.members[offset].session.progress_event());
        }
    }

    /// The scheduling views of every running job, in submit order.
    fn runnable_views(&self) -> Vec<JobView> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.phase == JobPhase::Running)
            .map(|(i, s)| JobView {
                handle: JobHandle(i as u64),
                priority: s.priority,
                deadline_at: s.deadline_at,
                slices: s.slices,
            })
            .collect()
    }

    /// Runs slices until every submitted job is finished.
    pub fn run_until_idle(&mut self) {
        while self.run_slice() {}
    }

    /// A point-in-time aggregate of the executor (see [`ExecutorStats`]).
    pub fn stats(&self) -> ExecutorStats {
        let mut stats = ExecutorStats {
            submitted: self.slots.len() as u64,
            queued: 0,
            running: 0,
            finished: 0,
            cancelled: self.cancelled,
            slices_dispatched: self.slices_dispatched,
            rounds_dispatched: self.rounds_dispatched,
            jobs: Vec::with_capacity(self.slots.len()),
        };
        for (i, slot) in self.slots.iter().enumerate() {
            match slot.phase {
                JobPhase::Queued => stats.queued += 1,
                JobPhase::Running => stats.running += 1,
                JobPhase::Finished => stats.finished += 1,
            }
            stats.jobs.push(JobStat {
                handle: JobHandle(i as u64),
                label: slot.label.clone(),
                phase: slot.phase,
                slices: slot.slices,
                rounds: slot.rounds(),
                wall: slot.wall(),
            });
        }
        stats
    }

    /// Admits queued jobs (FIFO) while the running count is below the cap.
    /// Admission runs the job's static phase — shared across its members —
    /// and starts its wall clock.
    fn admit(&mut self) {
        let mut running = self.slots.iter().filter(|s| s.phase == JobPhase::Running).count();
        for idx in 0..self.slots.len() {
            if running >= self.max_running {
                break;
            }
            if self.slots[idx].phase != JobPhase::Queued {
                continue;
            }
            let (program, goal, members) =
                self.slots[idx].pending.take().expect("queued jobs keep their spec");
            let admitted_at = Instant::now();
            // One static phase per job, over every goal location, shared by
            // all members — exactly what Portfolio::run always did.
            let analysis = Arc::new(StaticAnalysis::compute_multi(&program, &goal.primary_locs()));
            let slot = &mut self.slots[idx];
            slot.members = members
                .into_iter()
                .map(|(label, options)| {
                    let mut session = SynthesisSession::from_parts(
                        program.clone(),
                        analysis.clone(),
                        goal.clone(),
                        options.clone(),
                        None,
                        0,
                    );
                    // Each member's clock (elapsed, EsdOptions::deadline)
                    // covers the shared static phase, like a solo run's.
                    session.started_at = admitted_at;
                    MemberSlot { label, options, session }
                })
                .collect();
            slot.admitted_at = Some(admitted_at);
            slot.phase = JobPhase::Running;
            running += 1;
        }
    }

    /// Advances the job's next runnable member by `rounds` (inline, no
    /// pool): exactly one planned-and-merged slice. Used by the width-1
    /// [`SliceGrant`](JournalRecord::SliceGrant) replay path.
    fn advance(&mut self, idx: usize, rounds: u64) {
        let slot = &mut self.slots[idx];
        let run = run_member_slice(&mut slot.members, slot.next_member, rounds);
        self.merge_slice(idx, run);
    }

    /// Moves a job to [`JobPhase::Finished`]: cancels still-running member
    /// sessions, assembles the portfolio-shaped [`JobOutcome`], and fires
    /// the job observer's `on_finish`.
    fn finalize(&mut self, idx: usize, verdict: JobVerdict) {
        let slot = &mut self.slots[idx];
        for member in &mut slot.members {
            member.session.cancel(); // no-op on members already terminal
        }
        let mut result = PortfolioResult { winner: None, members: Vec::new() };
        // The terminal status handed to the job observer (the winner's
        // `Found`, or the first member's terminal status) — only tracked
        // when an observer exists, because the clone copies the full
        // synthesized execution.
        let has_observer = slot.observer.is_some();
        let mut finish_status: Option<SessionStatus> = None;
        let mut rounds_total = 0;
        for member in slot.members.drain(..) {
            let MemberSlot { label, options, session } = member;
            let rounds = session.rounds();
            rounds_total += rounds;
            let status = session.into_status();
            if has_observer && (finish_status.is_none() || status.found().is_some()) {
                finish_status = Some(status.clone());
            }
            let (outcome, stats) = match status {
                SessionStatus::Found(report) => {
                    let stats = report.stats.clone();
                    result.winner = Some(PortfolioWinner {
                        member: result.members.len(),
                        label: label.clone(),
                        report: *report,
                    });
                    (MemberOutcome::Won, stats)
                }
                SessionStatus::Cancelled(stats) => (MemberOutcome::Preempted, stats),
                SessionStatus::Exhausted(stats) => (MemberOutcome::Exhausted, stats),
                SessionStatus::BudgetExceeded(stats) => (MemberOutcome::BudgetExceeded, stats),
                SessionStatus::DeadlineExpired(stats) => (MemberOutcome::DeadlineExpired, stats),
                SessionStatus::Running => unreachable!("members were cancelled above"),
            };
            result.members.push(MemberReport {
                label,
                frontier: options.frontier,
                seed: options.seed,
                rounds,
                outcome,
                stats,
            });
        }
        let verdict = if result.winner.is_some() { JobVerdict::Found } else { verdict };
        let wall = slot.admitted_at.map(|t| t.elapsed()).unwrap_or_default();
        let outcome = JobOutcome {
            handle: JobHandle(idx as u64),
            label: slot.label.clone(),
            verdict,
            result,
            slices: slot.slices,
            rounds: rounds_total,
            wall,
        };
        slot.finished_rounds = rounds_total;
        slot.finished_wall = wall;
        slot.finished_verdict = Some(verdict);
        slot.phase = JobPhase::Finished;
        if let Some(observer) = &mut slot.observer {
            let status = finish_status
                .unwrap_or_else(|| SessionStatus::Cancelled(esd_symex::SearchStats::default()));
            observer.on_finish(&status);
        }
        slot.outcome = Some(outcome);
        if self.durable.is_some() {
            self.journal_append(&JournalRecord::Finalize { handle: idx as u64, verdict });
        }
    }

    /// Appends one record to the durable journal. Durability I/O failures
    /// are hard errors: a debugging service that silently loses its commit
    /// log cannot honor its recovery contract.
    fn journal_append(&mut self, record: &JournalRecord) {
        if let Some(durable) = &mut self.durable {
            durable.journal.append(record).expect("durable executor failed to append its journal");
        }
    }

    /// Writes a fresh checkpoint: the next-epoch journal is created first,
    /// then the snapshot naming that epoch is written atomically, then the
    /// old journal is deleted. A crash between any two of those steps leaves
    /// a consistent (snapshot, journal) pair for [`JobExecutor::recover`] —
    /// either the old pair (snapshot not yet renamed) or the new one.
    /// No-op on non-durable executors.
    pub fn checkpoint(&mut self) -> Result<(), SnapshotError> {
        if self.durable.is_none() {
            return Ok(());
        }
        let (dir, old_epoch) = {
            let durable = self.durable.as_ref().expect("checked above");
            (durable.dir.clone(), durable.epoch)
        };
        let new_epoch = old_epoch + 1;
        let journal = JournalWriter::create(&dir.join(journal_file(new_epoch)))
            .map_err(|e| SnapshotError::Io(e.to_string()))?;
        let snapshot = self.snapshot_with_epoch(new_epoch);
        save_snapshot(&dir.join(SNAPSHOT_FILE), &snapshot)?;
        let durable = self.durable.as_mut().expect("checked above");
        durable.journal = journal;
        durable.epoch = new_epoch;
        durable.slices_since_checkpoint = 0;
        let _ = std::fs::remove_file(dir.join(journal_file(old_epoch)));
        Ok(())
    }

    /// Captures the executor's complete durable state (see
    /// [`ExecutorSnapshot`]). Job observers are not captured.
    pub fn snapshot(&self) -> ExecutorSnapshot {
        let epoch = self.durable.as_ref().map(|d| d.epoch).unwrap_or(0);
        self.snapshot_with_epoch(epoch)
    }

    fn snapshot_with_epoch(&self, epoch: u64) -> ExecutorSnapshot {
        let now = Instant::now();
        let jobs = self
            .slots
            .iter()
            .map(|slot| JobSnapshot {
                label: slot.label.clone(),
                pending: slot
                    .pending
                    .as_ref()
                    .map(|(p, g, m)| (Program::clone(p), g.clone(), m.clone())),
                members: slot
                    .members
                    .iter()
                    .map(|m| (m.label.clone(), m.session.snapshot()))
                    .collect(),
                priority: slot.priority,
                deadline_rel_nanos: slot.deadline_at.map(|d| match d.checked_duration_since(now) {
                    Some(ahead) => ahead.as_nanos() as i64,
                    None => -(now.duration_since(d).as_nanos() as i64),
                }),
                admitted_elapsed: slot.admitted_at.map(|t| t.elapsed()),
                next_member: slot.next_member,
                slices: slot.slices,
                phase: slot.phase,
                outcome: slot.outcome.clone(),
                finished_rounds: slot.finished_rounds,
                finished_wall: slot.finished_wall,
                finished_verdict: slot.finished_verdict,
            })
            .collect();
        ExecutorSnapshot {
            policy: self.policy.name().to_string(),
            rotation: self.policy.rotation().map(|h| h.0),
            base_slice: self.base_slice,
            max_running: self.max_running,
            checkpoint_every: self.checkpoint_every,
            batch_width: self.batch_width,
            pool_size: self.pool_size,
            epoch,
            slices_dispatched: self.slices_dispatched,
            rounds_dispatched: self.rounds_dispatched,
            cancelled: self.cancelled,
            jobs,
        }
    }
}

/// Rebuilds the three built-in policies by [`FairnessPolicy::name`].
fn policy_by_name(name: &str) -> Option<Box<dyn FairnessPolicy>> {
    match name {
        "round-robin" => Some(Box::<RoundRobin>::default()),
        "weighted-by-priority" => Some(Box::<WeightedByPriority>::default()),
        "deadline-first" => Some(Box::<DeadlineFirst>::default()),
        _ => None,
    }
}

/// Restores an executor from a snapshot (no journal replay, no durability).
fn restore_snapshot(snapshot: &ExecutorSnapshot) -> Result<JobExecutor, RecoveryError> {
    let mut policy = policy_by_name(&snapshot.policy)
        .ok_or_else(|| RecoveryError::UnknownPolicy(snapshot.policy.clone()))?;
    policy.set_rotation(snapshot.rotation.map(JobHandle));
    let now = Instant::now();
    let slots = snapshot
        .jobs
        .iter()
        .map(|job| JobSlot {
            label: job.label.clone(),
            pending: job
                .pending
                .as_ref()
                .map(|(p, g, m)| (Arc::new(p.clone()), g.clone(), m.clone())),
            members: job
                .members
                .iter()
                .map(|(label, session)| MemberSlot {
                    label: label.clone(),
                    options: session.options.clone(),
                    session: SynthesisSession::restore(session),
                })
                .collect(),
            observer: None,
            priority: job.priority,
            deadline_at: job.deadline_rel_nanos.map(|nanos| {
                if nanos >= 0 {
                    now + Duration::from_nanos(nanos as u64)
                } else {
                    now.checked_sub(Duration::from_nanos(nanos.unsigned_abs())).unwrap_or(now)
                }
            }),
            admitted_at: job
                .admitted_elapsed
                .map(|elapsed| now.checked_sub(elapsed).unwrap_or(now)),
            next_member: job.next_member,
            slices: job.slices,
            phase: job.phase,
            outcome: job.outcome.clone(),
            finished_rounds: job.finished_rounds,
            finished_wall: job.finished_wall,
            finished_verdict: job.finished_verdict,
        })
        .collect();
    Ok(JobExecutor {
        policy,
        base_slice: snapshot.base_slice,
        max_running: snapshot.max_running,
        checkpoint_every: snapshot.checkpoint_every,
        batch_width: snapshot.batch_width,
        pool_size: snapshot.pool_size.max(1),
        slots,
        slices_dispatched: snapshot.slices_dispatched,
        rounds_dispatched: snapshot.rounds_dispatched,
        cancelled: snapshot.cancelled,
        durable: None,
    })
}

/// Replays a journal's valid prefix of records on top of a restored
/// snapshot — the implementation behind
/// [`Recovery::replay`](crate::journal::Recovery::replay). Slice grants
/// re-drive the restored fairness policy and every re-taken decision is
/// verified against the journaled one; any mismatch is a
/// [`RecoveryError::Divergence`], never a panic.
pub(crate) fn replay_records(
    snapshot: &ExecutorSnapshot,
    records: &[JournalRecord],
) -> Result<JobExecutor, RecoveryError> {
    let mut exec = restore_snapshot(snapshot)?;
    for record in records {
        match record {
            JournalRecord::Submit { handle, label, program, goal, members, priority, deadline } => {
                let expected = exec.slots.len() as u64;
                if *handle != expected {
                    return Err(RecoveryError::Divergence(format!(
                        "journaled submit assigns handle {handle}, executor would assign \
                         {expected}"
                    )));
                }
                let mut spec =
                    JobSpec::new(label.clone(), program, goal.clone()).priority(*priority);
                if let Some(deadline) = deadline {
                    spec = spec.deadline(*deadline);
                }
                for (member_label, options) in members {
                    spec = spec.member(member_label.clone(), options.clone());
                }
                exec.submit(spec);
            }
            JournalRecord::SliceGrant { handle, rounds } => {
                exec.admit();
                let views = exec.runnable_views();
                if views.is_empty() {
                    return Err(RecoveryError::Divergence(format!(
                        "journaled grant to job {handle} but no job is runnable"
                    )));
                }
                let (choice, granted) = exec.policy.next_slice(&views, exec.base_slice);
                let granted = granted.max(1);
                let chosen = views[choice.min(views.len() - 1)].handle;
                if chosen.0 != *handle || granted != *rounds {
                    return Err(RecoveryError::Divergence(format!(
                        "journal grants {rounds} rounds to job {handle}, replayed policy \
                         grants {granted} to job {}",
                        chosen.0
                    )));
                }
                exec.advance(chosen.0 as usize, granted);
            }
            JournalRecord::BatchGrant { grants } => {
                exec.admit();
                let views = exec.runnable_views();
                if views.is_empty() {
                    return Err(RecoveryError::Divergence(format!(
                        "journaled batch of {} grants but no job is runnable",
                        grants.len()
                    )));
                }
                // Re-plan with the restored policy + batch width and demand
                // the exact journaled grant vector: planning is deterministic,
                // so any mismatch means the snapshot/journal pair diverged.
                let replanned = exec.plan_batch(&views);
                if &replanned != grants {
                    return Err(RecoveryError::Divergence(format!(
                        "journaled batch grants {grants:?}, replayed policy plans {replanned:?}"
                    )));
                }
                exec.execute_batch(&replanned);
            }
            JournalRecord::Cancel { handle } => {
                if exec.slots.get(*handle as usize).is_none() {
                    return Err(RecoveryError::Divergence(format!(
                        "journaled cancel of unknown job {handle}"
                    )));
                }
                exec.cancel(JobHandle(*handle));
            }
            JournalRecord::Finalize { handle, verdict } => {
                let Some(slot) = exec.slots.get(*handle as usize) else {
                    return Err(RecoveryError::Divergence(format!(
                        "journaled finalize of unknown job {handle}"
                    )));
                };
                let actual = match slot.phase {
                    JobPhase::Finished => slot.outcome.as_ref().map(|o| o.verdict),
                    _ => None,
                };
                if actual != Some(*verdict) {
                    return Err(RecoveryError::Divergence(format!(
                        "journal finalizes job {handle} as {verdict:?}, replay reached \
                         {actual:?}"
                    )));
                }
            }
        }
    }
    Ok(exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ProgressEvent;
    use esd_ir::{CmpOp, Loc, ProgramBuilder};
    use std::sync::{Arc, Mutex};

    fn crashy(name: &str, trigger: i64) -> (esd_ir::Program, Loc) {
        let mut pb = ProgramBuilder::new(name);
        let mut loc = None;
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, trigger);
            let bug = f.new_block("bug");
            let ok = f.new_block("ok");
            f.cond_br(c, bug, ok);
            f.switch_to(bug);
            let z = f.konst(0);
            loc = Some(Loc::new(esd_ir::FuncId(0), bug, f.next_inst_idx()));
            let v = f.load(z);
            f.output(v);
            f.ret_void();
            f.switch_to(ok);
            f.ret_void();
        });
        (pb.finish("main"), loc.unwrap())
    }

    fn view(id: u64, priority: u32, deadline_at: Option<Instant>) -> JobView {
        JobView { handle: JobHandle(id), priority, deadline_at, slices: 0 }
    }

    #[test]
    fn round_robin_cycles_in_handle_order_across_membership_changes() {
        let mut rr = RoundRobin::default();
        let jobs = [view(0, 1, None), view(1, 1, None), view(2, 1, None)];
        assert_eq!(rr.next_slice(&jobs, 8), (0, 8));
        assert_eq!(rr.next_slice(&jobs, 8), (1, 8));
        // Job 2 finishes; the rotation keys on handles, so after serving
        // job 1 the next runnable handle wraps to 0.
        let jobs = [view(0, 1, None), view(1, 1, None)];
        assert_eq!(rr.next_slice(&jobs, 8), (0, 8));
        // A new job 3 arrives mid-cycle and gets its turn after 1.
        let jobs = [view(0, 1, None), view(1, 1, None), view(3, 1, None)];
        assert_eq!(rr.next_slice(&jobs, 8), (1, 8));
        assert_eq!(rr.next_slice(&jobs, 8), (2, 8));
        assert_eq!(rr.next_slice(&jobs, 8), (0, 8));
    }

    #[test]
    fn weighted_policy_scales_slices_by_priority() {
        let mut wp = WeightedByPriority::default();
        let jobs = [view(0, 1, None), view(1, 4, None)];
        assert_eq!(wp.next_slice(&jobs, 100), (0, 100));
        assert_eq!(wp.next_slice(&jobs, 100), (1, 400));
        assert_eq!(wp.next_slice(&jobs, 100), (0, 100));
    }

    #[test]
    fn deadline_first_serves_the_earliest_deadline_with_a_boost() {
        let mut df = DeadlineFirst::default();
        let now = Instant::now();
        let soon = now + Duration::from_secs(10);
        let late = now + Duration::from_secs(1000);
        let jobs = [view(0, 1, None), view(1, 1, Some(late)), view(2, 1, Some(soon))];
        assert_eq!(df.next_slice(&jobs, 100), (2, 100 * DEADLINE_SLICE_BOOST));
        // Deadline jobs are served exclusively while any remain.
        assert_eq!(df.next_slice(&jobs, 100), (2, 100 * DEADLINE_SLICE_BOOST));
        // Without deadline jobs, the policy degrades to round-robin.
        let jobs = [view(0, 1, None), view(3, 1, None)];
        assert_eq!(df.next_slice(&jobs, 100), (0, 100));
        assert_eq!(df.next_slice(&jobs, 100), (1, 100));
    }

    #[test]
    fn submit_poll_take_lifecycle() {
        let (p, loc) = crashy("exec_lifecycle", 9);
        let mut exec = JobExecutor::round_robin();
        let h = exec.submit(JobSpec::new("job", &p, GoalSpec::Crash { loc }));
        assert_eq!(exec.status(h), JobStatus::Queued);
        assert!(exec.has_work());
        exec.run_until_idle();
        assert_eq!(exec.status(h), JobStatus::Finished { verdict: JobVerdict::Found });
        assert!(!exec.has_work());
        let outcome = exec.take(h).expect("finished jobs expose an outcome");
        assert_eq!(outcome.verdict, JobVerdict::Found);
        assert_eq!(outcome.label, "job");
        assert_eq!(outcome.report().unwrap().execution.inputs[0].value, 9);
        assert_eq!(outcome.result.members.len(), 1, "default spec runs one member");
        assert!(outcome.slices > 0 && outcome.rounds > 0);
        assert!(exec.take(h).is_none(), "take() consumes the outcome");
    }

    #[test]
    fn admission_control_queues_beyond_the_cap_and_backfills() {
        let (p, loc) = crashy("exec_admission", 3);
        let mut exec = JobExecutor::round_robin().max_running(1).slice_rounds(1);
        let a = exec.submit(JobSpec::new("a", &p, GoalSpec::Crash { loc }));
        let b = exec.submit(JobSpec::new("b", &p, GoalSpec::Crash { loc }));
        assert!(exec.run_slice());
        let running = exec.status(a);
        assert!(matches!(running, JobStatus::Running { .. }));
        assert_eq!(running.progress().unwrap().slices, 1, "one slice went to a");
        assert_eq!(exec.status(b), JobStatus::Queued, "the cap keeps b queued");
        let stats = exec.stats();
        assert_eq!((stats.queued, stats.running), (1, 1));
        exec.run_until_idle();
        assert_eq!(exec.status(a).verdict(), Some(JobVerdict::Found));
        assert_eq!(
            exec.status(b).verdict(),
            Some(JobVerdict::Found),
            "b is admitted once a finishes"
        );
    }

    #[test]
    fn cancel_drops_queued_jobs_and_stops_running_ones() {
        let (p, loc) = crashy("exec_cancel", 5);
        let mut exec = JobExecutor::round_robin().max_running(1).slice_rounds(1);
        let a = exec.submit(JobSpec::new("a", &p, GoalSpec::Crash { loc }));
        let b = exec.submit(JobSpec::new("b", &p, GoalSpec::Crash { loc }));
        // Cancel b while it is still queued: no sessions ever exist for it.
        assert!(exec.cancel(b));
        assert_eq!(exec.status(b), JobStatus::Cancelled);
        let outcome = exec.take(b).unwrap();
        assert_eq!(outcome.verdict, JobVerdict::Cancelled);
        assert!(outcome.result.members.is_empty());
        assert_eq!(outcome.wall, Duration::ZERO);
        assert_eq!(exec.status(b), JobStatus::Cancelled, "status survives take()");
        // Cancel a mid-run: partial member stats survive.
        assert!(exec.run_slice());
        assert!(exec.cancel(a));
        let outcome = exec.take(a).unwrap();
        assert_eq!(outcome.verdict, JobVerdict::Cancelled);
        assert_eq!(outcome.result.members.len(), 1);
        assert_eq!(outcome.result.members[0].outcome, MemberOutcome::Preempted);
        assert!(!exec.cancel(a), "cancel on a finished job is a no-op");
        assert_eq!(exec.stats().cancelled, 2);
        assert!(!exec.run_slice(), "nothing left to run");
    }

    /// An observer shared with the test through `Arc<Mutex<_>>` (observers
    /// are `Send`, so plain `Rc` no longer satisfies the trait bound).
    #[derive(Default)]
    struct Recording {
        progress: Vec<ProgressEvent>,
        finished: Vec<&'static str>,
    }

    struct RecordingObserver(Arc<Mutex<Recording>>);

    impl Observer for RecordingObserver {
        fn on_progress(&mut self, event: &ProgressEvent) {
            self.0.lock().unwrap().progress.push(event.clone());
        }

        fn on_finish(&mut self, status: &SessionStatus) {
            self.0.lock().unwrap().finished.push(match status {
                SessionStatus::Found(_) => "found",
                _ => "other",
            });
        }
    }

    #[test]
    fn job_observer_receives_slice_progress_and_one_finish() {
        let (p, loc) = crashy("exec_observer", 2);
        let recording = Arc::new(Mutex::new(Recording::default()));
        let mut exec = JobExecutor::round_robin().slice_rounds(2);
        let h = exec.submit(
            JobSpec::new("watched", &p, GoalSpec::Crash { loc })
                .observer(Box::new(RecordingObserver(recording.clone()))),
        );
        exec.run_until_idle();
        assert_eq!(exec.status(h).verdict(), Some(JobVerdict::Found));
        let recording = recording.lock().unwrap();
        assert_eq!(recording.finished, vec!["found"], "exactly one terminal callback");
        assert!(
            !recording.progress.is_empty(),
            "2-round slices must produce intermediate progress events"
        );
        assert!(recording.progress.iter().all(|e| e.rounds > 0));
    }

    #[test]
    fn executor_stats_account_for_every_job() {
        let (p, loc) = crashy("exec_stats", 4);
        let mut exec = JobExecutor::weighted_by_priority();
        let a = exec.submit(JobSpec::new("a", &p, GoalSpec::Crash { loc }).priority(3));
        let b = exec.submit(JobSpec::new("b", &p, GoalSpec::Crash { loc }));
        exec.run_until_idle();
        let stats = exec.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.finished, 2);
        assert_eq!(stats.queued + stats.running, 0);
        assert_eq!(stats.jobs.len(), 2);
        assert_eq!(stats.jobs[a.id() as usize].label, "a");
        assert_eq!(stats.jobs[b.id() as usize].label, "b");
        assert!(stats.slices_dispatched >= 2);
        assert_eq!(
            stats.rounds_dispatched,
            stats.jobs.iter().map(|j| j.rounds).sum::<u64>(),
            "dispatched rounds equal the sum of per-job rounds"
        );

        // Terminal totals are frozen at finalize: taking the outcomes must
        // not zero a job's rounds or let its wall clock keep growing.
        let wall_before: Vec<Duration> = stats.jobs.iter().map(|j| j.wall).collect();
        exec.take(a);
        exec.take(b);
        let stats = exec.stats();
        assert_eq!(
            stats.rounds_dispatched,
            stats.jobs.iter().map(|j| j.rounds).sum::<u64>(),
            "per-job rounds must survive take()"
        );
        let wall_after: Vec<Duration> = stats.jobs.iter().map(|j| j.wall).collect();
        assert_eq!(wall_before, wall_after, "finished wall times must not drift");
    }

    /// The deprecated `poll`/`outcome` shims keep answering exactly as the
    /// unified [`JobStatus`] surface does, for one release.
    #[test]
    #[allow(deprecated)]
    fn deprecated_poll_and_outcome_shims_agree_with_status() {
        let (p, loc) = crashy("exec_shims", 6);
        let mut exec = JobExecutor::round_robin();
        let h = exec.submit(JobSpec::new("job", &p, GoalSpec::Crash { loc }));
        assert_eq!(exec.poll(h), JobPhase::Queued);
        assert_eq!(exec.status(h), JobStatus::Queued);
        exec.run_until_idle();
        assert_eq!(exec.poll(h), JobPhase::Finished);
        assert_eq!(exec.outcome(h).unwrap().verdict, JobVerdict::Found);
        assert_eq!(exec.status(h), JobStatus::Finished { verdict: JobVerdict::Found });
    }

    /// Runs a three-job batch at the given (batch width, pool size) and
    /// returns each job's synthesized-execution JSON plus total slices.
    fn run_three_jobs(width: usize, pool: usize) -> (Vec<String>, u64) {
        let jobs: Vec<_> = (0..3).map(|i| crashy(&format!("exec_pool_{i}"), 3 + i)).collect();
        let mut exec =
            JobExecutor::round_robin().slice_rounds(2).batch_width(width).pool_size(pool);
        let handles: Vec<_> = jobs
            .iter()
            .enumerate()
            .map(|(i, (p, loc))| {
                exec.submit(JobSpec::new(format!("job{i}"), p, GoalSpec::Crash { loc: *loc }))
            })
            .collect();
        exec.run_until_idle();
        let executions = handles
            .into_iter()
            .map(|h| {
                let outcome = exec.take(h).expect("job finished");
                assert_eq!(outcome.verdict, JobVerdict::Found);
                outcome.report().expect("Found carries a report").execution.to_json()
            })
            .collect();
        (executions, exec.stats().slices_dispatched)
    }

    /// The cross-job determinism contract in unit form: widening the batch
    /// and spreading it over a pool changes neither any job's synthesized
    /// execution nor the total number of dispatched slices.
    #[test]
    fn batch_width_and_pool_size_never_change_results() {
        let (serial, serial_slices) = run_three_jobs(1, 1);
        for (width, pool) in [(3, 1), (3, 3), (2, 8)] {
            let (batched, slices) = run_three_jobs(width, pool);
            assert_eq!(batched, serial, "width={width} pool={pool}");
            assert_eq!(slices, serial_slices, "width={width} pool={pool}");
        }
    }

    /// Snapshots carry the new executor fields: `batch_width`, `pool_size`
    /// and the per-job frozen verdict all survive a snapshot → restore
    /// round-trip (replay with an empty journal).
    #[test]
    fn snapshot_round_trips_batch_fields_and_finished_verdict() {
        let (p, loc) = crashy("exec_snapshot_batch", 2);
        let mut exec = JobExecutor::round_robin().batch_width(2).pool_size(4);
        let h = exec.submit(JobSpec::new("job", &p, GoalSpec::Crash { loc }));
        exec.run_until_idle();
        exec.take(h).expect("job finished");
        let snapshot = exec.snapshot();
        assert_eq!((snapshot.batch_width, snapshot.pool_size), (2, 4));
        assert_eq!(snapshot.jobs[0].finished_verdict, Some(JobVerdict::Found));
        let restored = replay_records(&snapshot, &[]).expect("snapshot restores");
        assert_eq!((restored.batch_width, restored.pool_size), (2, 4));
        assert_eq!(restored.status(h), JobStatus::Finished { verdict: JobVerdict::Found });
    }

    /// Durable batch grants recover: a width-2 executor journals
    /// `BatchGrant` records, and a cold-crash recovery replays them to the
    /// identical outcome.
    #[test]
    fn durable_batch_grants_replay_after_a_crash() {
        let dir = std::env::temp_dir().join(format!("esd_batch_recovery_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (p, loc) = crashy("exec_batch_recovery", 7);
        let (q, qloc) = crashy("exec_batch_recovery_b", 4);
        let mut exec = JobExecutor::round_robin()
            .slice_rounds(2)
            .batch_width(2)
            .checkpoint_every(1000) // never checkpoint: force journal replay
            .durable_dir(&dir)
            .expect("durable dir");
        let a = exec.submit(JobSpec::new("a", &p, GoalSpec::Crash { loc }));
        let b = exec.submit(JobSpec::new("b", &q, GoalSpec::Crash { loc: qloc }));
        // Run two batches, then crash cold (drop without checkpoint).
        assert!(exec.run_slice());
        assert!(exec.run_slice());
        drop(exec);
        let mut recovered = JobExecutor::recover(&dir).expect("recovery succeeds");
        recovered.run_until_idle();
        for h in [a, b] {
            assert_eq!(recovered.status(h).verdict(), Some(JobVerdict::Found), "{h:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
