//! Brute-force stress / random-input testing (§7.2), and the "failure in
//! production" generator.
//!
//! The paper's first baseline is running the program many times with random
//! inputs under an uncontrolled scheduler and hoping the bug manifests. The
//! same machinery is what *produces* coredumps for the workload suite: a
//! failing run at the (simulated) end-user site.

use esd_ir::{
    interp::{InterpreterConfig, MapInputs, RandomInputs, SchedulerKind},
    CoreDump, ExecOutcome, Interpreter, Program, ThreadId,
};

/// Configuration for a stress-testing campaign.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Number of runs (each with a fresh scheduler seed and fresh random
    /// inputs).
    pub runs: u32,
    /// Instruction budget per run.
    pub max_steps_per_run: u64,
    /// Base PRNG seed.
    pub seed: u64,
    /// Fixed inputs to use instead of random ones (e.g. a known failing
    /// input vector, to stress only the schedule dimension).
    pub fixed_inputs: Option<Vec<((ThreadId, u32), i64)>>,
    /// Range of random input values (inclusive).
    pub input_range: (i64, i64),
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            runs: 200,
            max_steps_per_run: 200_000,
            seed: 42,
            fixed_inputs: None,
            input_range: (0, 127),
        }
    }
}

/// The outcome of a stress campaign.
#[derive(Debug, Clone)]
pub struct StressOutcome {
    /// The first failure observed, if any.
    pub failure: Option<CoreDump>,
    /// Number of runs executed.
    pub runs: u32,
    /// Index of the failing run (if any).
    pub failing_run: Option<u32>,
    /// Total instructions executed across all runs.
    pub total_steps: u64,
}

impl StressOutcome {
    /// True if some run failed.
    pub fn failed(&self) -> bool {
        self.failure.is_some()
    }
}

/// Runs the stress-testing baseline on `program`.
pub fn stress_test(program: &Program, config: &StressConfig) -> StressOutcome {
    let mut total_steps = 0u64;
    for run in 0..config.runs {
        let seed = config.seed.wrapping_add(run as u64).wrapping_mul(0x9e37_79b9);
        let inputs: Box<dyn esd_ir::interp::InputProvider> = match &config.fixed_inputs {
            Some(fixed) => Box::new(MapInputs::from_entries(fixed.iter().copied())),
            None => Box::new(RandomInputs::new(seed, config.input_range.0, config.input_range.1)),
        };
        let mut interp = Interpreter::new(program, inputs);
        let result = interp.run(&InterpreterConfig {
            max_steps: config.max_steps_per_run,
            scheduler: SchedulerKind::Random { seed },
            record_trace: false,
        });
        total_steps += result.steps;
        if let ExecOutcome::Fault(dump) = result.outcome {
            return StressOutcome {
                failure: Some(*dump),
                runs: run + 1,
                failing_run: Some(run),
                total_steps,
            };
        }
    }
    StressOutcome { failure: None, runs: config.runs, failing_run: None, total_steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{CmpOp, ProgramBuilder};

    #[test]
    fn stress_finds_an_easy_crash() {
        // Crashes whenever the first input byte is < 64: random testing finds
        // this almost immediately.
        let mut pb = ProgramBuilder::new("easy");
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let c = f.cmp(CmpOp::Lt, x, 64);
            let bug = f.new_block("bug");
            let ok = f.new_block("ok");
            f.cond_br(c, bug, ok);
            f.switch_to(bug);
            let z = f.konst(0);
            let v = f.load(z);
            f.output(v);
            f.ret_void();
            f.switch_to(ok);
            f.ret_void();
        });
        let p = pb.finish("main");
        let out = stress_test(&p, &StressConfig { runs: 50, ..Default::default() });
        assert!(out.failed());
        assert!(out.failing_run.is_some());
    }

    #[test]
    fn stress_misses_a_needle_in_a_haystack() {
        // Crashes only for one specific input value out of 2^63: random
        // testing with a bounded budget does not reproduce it (the §7.2
        // observation that motivates execution synthesis).
        let mut pb = ProgramBuilder::new("needle");
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let y = f.input(esd_ir::InputSource::Net);
            let sum = f.add(x, y);
            let c = f.cmp(CmpOp::Eq, sum, 123_456_789);
            let bug = f.new_block("bug");
            let ok = f.new_block("ok");
            f.cond_br(c, bug, ok);
            f.switch_to(bug);
            let z = f.konst(0);
            let v = f.load(z);
            f.output(v);
            f.ret_void();
            f.switch_to(ok);
            f.ret_void();
        });
        let p = pb.finish("main");
        let out = stress_test(&p, &StressConfig { runs: 100, ..Default::default() });
        assert!(!out.failed());
        assert_eq!(out.runs, 100);
        assert!(out.total_steps > 0);
    }

    #[test]
    fn fixed_inputs_are_honored() {
        let mut pb = ProgramBuilder::new("fixed");
        pb.function("main", 0, |f| {
            let x = f.getchar();
            f.output(x);
            let z = f.cmp(CmpOp::Eq, x, 7);
            f.assert(z, "x must be 7");
            f.ret_void();
        });
        let p = pb.finish("main");
        let ok = stress_test(
            &p,
            &StressConfig {
                runs: 3,
                fixed_inputs: Some(vec![((ThreadId(0), 0), 7)]),
                ..Default::default()
            },
        );
        assert!(!ok.failed());
        let bad = stress_test(
            &p,
            &StressConfig {
                runs: 3,
                fixed_inputs: Some(vec![((ThreadId(0), 0), 8)]),
                ..Default::default()
            },
        );
        assert!(bad.failed());
    }
}
