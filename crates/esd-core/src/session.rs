//! Stepwise synthesis sessions: the resumable form of `esdsynth`.
//!
//! [`Esd::synthesize`](crate::Esd::synthesize) is a blocking one-shot — fine
//! for a single bug report, wrong for anything that needs to observe
//! progress, enforce a deadline, cancel a runaway job, or interleave several
//! synthesis jobs on one machine. A [`SynthesisSession`] is the same pipeline
//! cut at the engine's round boundary ([`esd_symex::Engine::step_round`]):
//! it owns the program, the static analysis and the engine for one job, and
//! the caller decides when (and how much) it runs:
//!
//! * [`SynthesisSession::run_for`] advances up to `n` search rounds and
//!   returns the current [`SessionStatus`];
//! * [`SynthesisSession::poll`] inspects the status without advancing;
//! * [`SynthesisSession::cancel`] stops the job, keeping the partial
//!   [`SearchStats`];
//! * an [`Observer`] receives [`ProgressEvent`]s (step count, states forked
//!   and pruned, races flagged, current best proximity) while the search
//!   runs.
//!
//! Slicing never changes the result: for a fixed seed, a session advanced
//! one round at a time synthesizes the exact execution the one-shot facade
//! produces, because the facade *is* a loop over the same rounds.
//!
//! Sessions are configured with the builder-style [`EsdOptionsBuilder`]
//! (`EsdOptions::builder()`), and composed by the layers above: the
//! [`Portfolio`](crate::portfolio::Portfolio) runner races several sessions
//! with different search frontiers over the same job, and the multi-job
//! [`JobExecutor`](crate::executor::JobExecutor) holds many independent
//! jobs' sessions and time-slices them under a fairness policy — both share
//! the executor's single time-slicing loop.

use crate::execfile::SynthesizedExecution;
use crate::synth::{Esd, EsdOptions, SynthesisReport};
use esd_analysis::StaticAnalysis;
use esd_ir::Program;
use esd_symex::{
    Engine, EngineConfig, EngineSnapshot, FrontierKind, GoalSpec, SearchConfig, SearchStats,
    StepOutcome, Synthesized,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many rounds a session runs between [`ProgressEvent`]s by default
/// (overridable via [`EsdOptionsBuilder::progress_every`]).
pub const DEFAULT_PROGRESS_EVERY: u64 = 4096;

/// How a session slice is advanced internally by the blocking facade.
const RUN_TO_COMPLETION_SLICE: u64 = 16 * 1024;

/// A progress snapshot handed to an [`Observer`] while a session runs.
///
/// Serializable so the service layer can stream progress as wire messages.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ProgressEvent {
    /// Search rounds (frontier selections) completed so far.
    pub rounds: u64,
    /// Instructions executed across all states.
    pub steps: u64,
    /// States created (forks admitted to the pool, including the initial
    /// state).
    pub states_created: u64,
    /// Forked states dropped before entering the pool (duplicate
    /// fingerprint or pool cap).
    pub states_pruned: u64,
    /// Live states currently in the pool.
    pub live_states: usize,
    /// Data races flagged by the lockset detector.
    pub races_flagged: usize,
    /// Bugs found that did not match the goal.
    pub other_bugs_found: usize,
    /// Branch forks decided by the static interval analysis instead of the
    /// solver.
    pub branches_pruned_static: u64,
    /// Solver queries the static verdicts made unnecessary.
    pub solver_queries_saved: u64,
    /// Preemption forks skipped because the yield has no static race-pair
    /// candidate material around it.
    pub preemptions_pruned_static: u64,
    /// The lowest final-goal priority key seen so far (`None` until a
    /// priority-driven frontier computes one) — how close the search has
    /// come to the reported failure.
    pub best_proximity: Option<u64>,
    /// Wall-clock time since the session was created.
    pub elapsed: Duration,
}

/// Receives progress callbacks from a [`SynthesisSession`].
///
/// Attach one with [`EsdOptionsBuilder::observer`]. Both methods have empty
/// default bodies so implementors opt into exactly the callbacks they need.
/// Observers are `Send` because the executor advances sessions on a worker
/// thread pool; callbacks still fire from one thread at a time (and job
/// observers always fire on the executor's own thread, in deterministic
/// merge order).
pub trait Observer: Send {
    /// Called every [`EsdOptionsBuilder::progress_every`] rounds while the
    /// session is running.
    fn on_progress(&mut self, _event: &ProgressEvent) {}

    /// Called exactly once, when the session reaches a terminal
    /// [`SessionStatus`] (found / exhausted / budget / deadline /
    /// cancelled).
    fn on_finish(&mut self, _status: &SessionStatus) {}
}

/// The state of a [`SynthesisSession`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum SessionStatus {
    /// The search has not reached a verdict; keep calling
    /// [`SynthesisSession::run_for`].
    Running,
    /// The goal was reached: the synthesized execution and its report.
    Found(Box<SynthesisReport>),
    /// Every state was explored or abandoned without reaching the goal.
    Exhausted(SearchStats),
    /// The instruction budget (`max_steps`) ran out.
    BudgetExceeded(SearchStats),
    /// The wall-clock deadline passed before the search reached a verdict.
    DeadlineExpired(SearchStats),
    /// [`SynthesisSession::cancel`] was called; the stats cover the work
    /// done up to that point.
    Cancelled(SearchStats),
}

impl SessionStatus {
    /// True while the session can still be advanced.
    pub fn is_running(&self) -> bool {
        matches!(self, SessionStatus::Running)
    }

    /// The synthesis report, if the session succeeded.
    pub fn found(&self) -> Option<&SynthesisReport> {
        match self {
            SessionStatus::Found(r) => Some(r),
            _ => None,
        }
    }

    /// The search statistics carried by a terminal status (`None` while
    /// running).
    pub fn stats(&self) -> Option<&SearchStats> {
        match self {
            SessionStatus::Running => None,
            SessionStatus::Found(r) => Some(&r.stats),
            SessionStatus::Exhausted(s)
            | SessionStatus::BudgetExceeded(s)
            | SessionStatus::DeadlineExpired(s)
            | SessionStatus::Cancelled(s) => Some(s),
        }
    }
}

/// The complete durable state of a [`SynthesisSession`], produced by
/// [`SynthesisSession::snapshot`] and consumed by
/// [`SynthesisSession::restore`].
///
/// The snapshot is self-contained: it embeds the program, the options and
/// the exact engine state (frontier contents, dedup fingerprints, RNG
/// stream, statistics), so `restore` needs nothing but the snapshot. The
/// static analysis is deliberately *not* stored — it is recomputed on
/// restore, which is deterministic. Serialization is canonical: taking a
/// snapshot of a restored session yields byte-identical JSON (pinned by the
/// `properties` suite).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SessionSnapshot {
    /// The program under synthesis.
    pub program: Program,
    /// The options the session was created with.
    pub options: EsdOptions,
    /// The engine's durable state (states, frontier, stats, RNG).
    pub engine: EngineSnapshot,
    /// Search rounds advanced so far.
    pub rounds: u64,
    /// The session status at snapshot time.
    pub status: SessionStatus,
    /// Wall-clock time the session had been running when the snapshot was
    /// taken; `restore` rebases the session clock by this much so deadlines
    /// keep covering the pre-snapshot work.
    pub elapsed: Duration,
    /// The progress cadence ([`EsdOptionsBuilder::progress_every`]).
    pub progress_every: u64,
}

/// Builder-style configuration for [`EsdOptions`], sessions and synthesizers
/// — obtained from [`EsdOptions::builder`].
///
/// Every knob of the plain options struct has a chainable setter, plus the
/// session-only knobs (deadline, observer, progress cadence). Finish with
/// [`build`](EsdOptionsBuilder::build) for a plain [`EsdOptions`],
/// [`synthesizer`](EsdOptionsBuilder::synthesizer) for a blocking [`Esd`],
/// or [`session`](EsdOptionsBuilder::session) for a resumable
/// [`SynthesisSession`] (the only finisher that uses an attached observer).
#[derive(Default)]
pub struct EsdOptionsBuilder {
    options: EsdOptions,
    observer: Option<Box<dyn Observer>>,
    progress_every: Option<u64>,
}

impl EsdOptionsBuilder {
    /// Total instruction budget for the dynamic phase.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.options.max_steps = max_steps;
        self
    }

    /// Maximum number of live execution states.
    pub fn max_states(mut self, max_states: usize) -> Self {
        self.options.max_states = max_states;
        self
    }

    /// Random seed for the stochastic frontiers.
    pub fn seed(mut self, seed: u64) -> Self {
        self.options.seed = seed;
        self
    }

    /// Which search frontier orders the exploration.
    pub fn frontier(mut self, frontier: FrontierKind) -> Self {
        self.options.frontier = frontier;
        self
    }

    /// Use intermediate goals from the static phase.
    pub fn use_intermediate_goals(mut self, on: bool) -> Self {
        self.options.use_intermediate_goals = on;
        self
    }

    /// Abandon paths that violate critical edges.
    pub fn use_critical_edges(mut self, on: bool) -> Self {
        self.options.use_critical_edges = on;
        self
    }

    /// Use the deadlock schedule-distance bias.
    pub fn schedule_bias(mut self, on: bool) -> Self {
        self.options.schedule_bias = on;
        self
    }

    /// Enable lockset-race-directed preemptions (`--with-race-det`).
    pub fn with_race_detection(mut self, on: bool) -> Self {
        self.options.with_race_detection = on;
        self
    }

    /// Consult the static interval-analysis branch verdicts to skip solver
    /// queries on provably one-sided branches (on by default).
    pub fn static_pruning(mut self, on: bool) -> Self {
        self.options.static_pruning = on;
        self
    }

    /// Consult the static race-pair candidates in race-preemption mode so
    /// yields with no candidate-pair material around them skip the
    /// speculative preemption fork; concretely flagged accesses always fork
    /// (on by default).
    pub fn race_candidate_pruning(mut self, on: bool) -> Self {
        self.options.race_candidate_pruning = on;
        self
    }

    /// Worker threads for multi-state frontier batches (the beam frontier);
    /// `1` stays on the calling thread, `0` uses all available parallelism.
    /// The thread count never changes the synthesized execution.
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Wall-clock deadline: the search stops with
    /// [`SessionStatus::DeadlineExpired`] (or
    /// [`SynthesisError::DeadlineExpired`](crate::SynthesisError) from the
    /// blocking facade) once this much time has passed since the session was
    /// created.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.options.deadline = Some(deadline);
        self
    }

    /// Attach a progress [`Observer`]. Observers are carried by sessions, so
    /// this only takes effect through the
    /// [`session`](EsdOptionsBuilder::session) finisher.
    pub fn observer(mut self, observer: Box<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// How many rounds between [`Observer::on_progress`] calls
    /// (default [`DEFAULT_PROGRESS_EVERY`]; `0` disables periodic events).
    pub fn progress_every(mut self, rounds: u64) -> Self {
        self.progress_every = Some(rounds);
        self
    }

    /// Finishes into a plain [`EsdOptions`] (any attached observer is for
    /// sessions only and is dropped here).
    pub fn build(self) -> EsdOptions {
        self.options
    }

    /// Finishes into a blocking [`Esd`] synthesizer with these options.
    pub fn synthesizer(self) -> Esd {
        Esd::new(self.options)
    }

    /// Finishes into a resumable [`SynthesisSession`] for one job, carrying
    /// the attached observer. The static phase runs here; the dynamic phase
    /// runs as the caller advances the session.
    pub fn session(self, program: &Program, goal: GoalSpec) -> SynthesisSession {
        let mut session = SynthesisSession::new(program, goal, self.options);
        session.observer = self.observer;
        session.progress_every = self.progress_every.unwrap_or(DEFAULT_PROGRESS_EVERY);
        session
    }
}

/// One resumable synthesis job: the program, its static analysis and the
/// search engine, advanced in caller-controlled slices.
///
/// Create one with [`EsdOptions::builder`]`()...`[`session`](EsdOptionsBuilder::session)
/// (or [`SynthesisSession::new`]). Determinism invariant: for a fixed seed,
/// the slicing pattern (`run_for(1)` a million times, `run_for(u64::MAX)`
/// once, or anything between) never changes the synthesized execution —
/// see the `session_slicing_is_deterministic` integration test.
pub struct SynthesisSession {
    engine: Engine,
    observer: Option<Box<dyn Observer>>,
    /// The options the session was created with, retained so a
    /// [`SessionSnapshot`] can rebuild an equivalent session.
    options: EsdOptions,
    deadline: Option<Duration>,
    progress_every: u64,
    /// When this job's clock started. Constructors that run the static
    /// phase themselves rebase this so `elapsed` (and the deadline) cover
    /// the whole synthesis — static + dynamic — like the blocking facade
    /// always reported.
    pub(crate) started_at: Instant,
    rounds: u64,
    status: SessionStatus,
}

impl SynthesisSession {
    /// Creates a session for one job with the given options (no observer;
    /// use the builder to attach one).
    pub fn new(program: &Program, goal: GoalSpec, options: EsdOptions) -> Self {
        let started_at = Instant::now();
        let program = Arc::new(program.clone());
        // The static phase covers *every* goal location (a deadlock report
        // lists one blocked-lock location per deadlocked thread), so the
        // proximity guidance reaches all of them.
        let analysis = Arc::new(StaticAnalysis::compute_multi(&program, &goal.primary_locs()));
        let mut session =
            Self::from_parts(program, analysis, goal, options, None, DEFAULT_PROGRESS_EVERY);
        session.started_at = started_at;
        session
    }

    /// Creates a session over an already-computed static analysis, so
    /// several sessions for the same job (a [`Portfolio`](crate::Portfolio))
    /// share one static phase. `progress_every == 0` disables periodic
    /// progress events.
    pub fn from_parts(
        program: Arc<Program>,
        analysis: Arc<StaticAnalysis>,
        goal: GoalSpec,
        options: EsdOptions,
        observer: Option<Box<dyn Observer>>,
        progress_every: u64,
    ) -> Self {
        let config = EngineConfig {
            search: SearchConfig { kind: options.frontier, seed: options.seed },
            preemption_bound: None,
            max_steps: options.max_steps,
            max_states: options.max_states,
            use_intermediate_goals: options.use_intermediate_goals,
            use_critical_edges: options.use_critical_edges,
            schedule_bias: options.schedule_bias,
            race_preemptions: options.with_race_detection,
            static_pruning: options.static_pruning,
            race_candidate_pruning: options.race_candidate_pruning,
            threads: options.threads,
            ..EngineConfig::default()
        };
        let engine = Engine::new(program, analysis, goal, config);
        SynthesisSession {
            engine,
            observer,
            deadline: options.deadline,
            options,
            progress_every,
            started_at: Instant::now(),
            rounds: 0,
            status: SessionStatus::Running,
        }
    }

    /// Captures the session's complete durable state (see
    /// [`SessionSnapshot`]). The attached [`Observer`], if any, is not part
    /// of the snapshot — observers are live callbacks, not state.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            program: Program::clone(self.engine.program()),
            options: self.options.clone(),
            engine: self.engine.snapshot(),
            rounds: self.rounds,
            status: self.status.clone(),
            elapsed: self.started_at.elapsed(),
            progress_every: self.progress_every,
        }
    }

    /// Rebuilds a session from a [`SessionSnapshot`]. The static analysis is
    /// recomputed (it is a deterministic function of the program and the
    /// goal), the engine is restored exactly, and the session clock is
    /// rebased so `elapsed()` continues from the snapshot's value. The
    /// restored session carries no observer; attach state reporting anew if
    /// needed.
    ///
    /// Determinism invariant: continuing a restored session produces the
    /// byte-identical synthesized execution an uninterrupted run produces
    /// (pinned by the crash-recovery test matrix).
    pub fn restore(snapshot: &SessionSnapshot) -> Self {
        let program = Arc::new(snapshot.program.clone());
        let analysis =
            Arc::new(StaticAnalysis::compute_multi(&program, &snapshot.engine.goal.primary_locs()));
        let engine = Engine::restore(program, analysis, &snapshot.engine);
        let started_at = Instant::now().checked_sub(snapshot.elapsed).unwrap_or_else(Instant::now);
        SynthesisSession {
            engine,
            observer: None,
            deadline: snapshot.options.deadline,
            options: snapshot.options.clone(),
            progress_every: snapshot.progress_every,
            started_at,
            rounds: snapshot.rounds,
            status: snapshot.status.clone(),
        }
    }

    /// Advances the search by up to `rounds` rounds (frontier selections),
    /// stopping early at any terminal status, and returns the status.
    ///
    /// Calling this after the session finished is a no-op returning the
    /// terminal status.
    pub fn run_for(&mut self, rounds: u64) -> &SessionStatus {
        for _ in 0..rounds {
            if !self.status.is_running() {
                break;
            }
            if let Some(deadline) = self.deadline {
                if self.started_at.elapsed() >= deadline {
                    let stats = self.engine.stats().clone();
                    self.finish(SessionStatus::DeadlineExpired(stats));
                    break;
                }
            }
            let outcome = self.engine.step_round();
            self.rounds += 1;
            match outcome {
                StepOutcome::Running => {}
                StepOutcome::Found(synth) => {
                    let report = self.report(*synth);
                    self.finish(SessionStatus::Found(Box::new(report)));
                }
                StepOutcome::Exhausted => {
                    let stats = self.engine.stats().clone();
                    self.finish(SessionStatus::Exhausted(stats));
                }
                StepOutcome::BudgetExceeded => {
                    let stats = self.engine.stats().clone();
                    self.finish(SessionStatus::BudgetExceeded(stats));
                }
            }
            if self.status.is_running()
                && self.progress_every > 0
                && self.rounds.is_multiple_of(self.progress_every)
            {
                let event = self.progress_event();
                if let Some(observer) = &mut self.observer {
                    observer.on_progress(&event);
                }
            }
        }
        &self.status
    }

    /// Runs the session to a terminal status (the blocking facade's loop).
    pub fn run_to_completion(&mut self) -> &SessionStatus {
        while self.status.is_running() {
            self.run_for(RUN_TO_COMPLETION_SLICE);
        }
        &self.status
    }

    /// The current status, without advancing the search.
    pub fn poll(&self) -> &SessionStatus {
        &self.status
    }

    /// Stops the job. The session transitions to
    /// [`SessionStatus::Cancelled`] (if it was still running) and the
    /// partial search statistics are returned; a session that already
    /// finished keeps its status and returns its final stats.
    pub fn cancel(&mut self) -> SearchStats {
        if self.status.is_running() {
            let stats = self.engine.stats().clone();
            self.finish(SessionStatus::Cancelled(stats));
        }
        self.stats()
    }

    /// Consumes the session, returning its final (or current) status.
    pub fn into_status(self) -> SessionStatus {
        self.status
    }

    /// The search statistics accumulated so far (terminal or not).
    pub fn stats(&self) -> SearchStats {
        self.engine.stats().clone()
    }

    /// Search rounds advanced so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Wall-clock time since the session was created.
    pub fn elapsed(&self) -> Duration {
        self.started_at.elapsed()
    }

    /// The goal this session searches for.
    pub fn goal(&self) -> &GoalSpec {
        self.engine.goal()
    }

    /// A progress snapshot of the current search state (the same data an
    /// [`Observer`] receives).
    pub fn progress_event(&self) -> ProgressEvent {
        let stats = self.engine.stats();
        ProgressEvent {
            rounds: self.rounds,
            steps: stats.steps,
            states_created: stats.states_created,
            states_pruned: stats.states_pruned,
            live_states: self.engine.live_states(),
            races_flagged: stats.races_flagged,
            other_bugs_found: stats.other_bugs_found,
            branches_pruned_static: stats.branches_pruned_static,
            solver_queries_saved: stats.solver_queries_saved,
            preemptions_pruned_static: stats.preemptions_pruned_static,
            best_proximity: stats.best_proximity,
            elapsed: self.started_at.elapsed(),
        }
    }

    fn finish(&mut self, status: SessionStatus) {
        self.status = status;
        if let Some(observer) = &mut self.observer {
            observer.on_finish(&self.status);
        }
    }

    fn report(&self, synth: Synthesized) -> SynthesisReport {
        SynthesisReport {
            execution: SynthesizedExecution::from_synthesized(&self.engine.program().name, &synth),
            goal: self.engine.goal().clone(),
            stats: synth.stats,
            elapsed: self.started_at.elapsed(),
            other_bugs: self.engine.other_bugs.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{CmpOp, Loc, ProgramBuilder};
    use std::sync::{Arc, Mutex};

    fn crashy() -> (esd_ir::Program, Loc) {
        let mut pb = ProgramBuilder::new("session_crashy");
        let mut loc = None;
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, 42);
            let bug = f.new_block("bug");
            let ok = f.new_block("ok");
            f.cond_br(c, bug, ok);
            f.switch_to(bug);
            let z = f.konst(0);
            loc = Some(Loc::new(esd_ir::FuncId(0), bug, f.next_inst_idx()));
            let v = f.load(z);
            f.output(v);
            f.ret_void();
            f.switch_to(ok);
            f.ret_void();
        });
        (pb.finish("main"), loc.unwrap())
    }

    /// A plain AB/BA two-lock deadlock: `t1` locks A then B, `t2` locks B
    /// then A. Returns the program and the two blocked-lock locations (one
    /// per deadlocked thread), which live in *different* functions — the
    /// shape that requires the static phase to cover every goal location.
    fn deadlocky() -> (esd_ir::Program, Vec<Loc>) {
        let mut pb = esd_ir::ProgramBuilder::new("session_deadlock");
        let a = pb.global("A", 1);
        let b = pb.global("B", 1);
        let mut inner1 = None;
        let t1 = pb.declare("t1", 1);
        pb.define(t1, |f| {
            let ap = f.addr_global(a);
            let bp = f.addr_global(b);
            f.lock(ap);
            inner1 = Some(Loc::new(t1, f.current_block(), f.next_inst_idx()));
            f.lock(bp);
            f.unlock(bp);
            f.unlock(ap);
            f.ret_void();
        });
        let mut inner2 = None;
        let t2 = pb.declare("t2", 1);
        pb.define(t2, |f| {
            let ap = f.addr_global(a);
            let bp = f.addr_global(b);
            f.lock(bp);
            inner2 = Some(Loc::new(t2, f.current_block(), f.next_inst_idx()));
            f.lock(ap);
            f.unlock(ap);
            f.unlock(bp);
            f.ret_void();
        });
        pb.function("main", 0, |f| {
            let h1 = f.spawn(t1, 0);
            let h2 = f.spawn(t2, 0);
            f.join(h1);
            f.join(h2);
            f.ret_void();
        });
        (pb.finish("main"), vec![inner1.unwrap(), inner2.unwrap()])
    }

    /// Regression test for the deadlock static phase: the session used to
    /// seed `StaticAnalysis` with only `primary_locs()[0]`, so guidance
    /// ignored the second deadlocked thread's lock site. With the phase
    /// computed over all goal locations, the AB/BA deadlock — whose two
    /// blocked-lock sites live in two different functions — is synthesized.
    #[test]
    fn two_lock_deadlock_is_synthesized_with_multi_goal_static_phase() {
        let (p, locs) = deadlocky();
        let mut session = EsdOptions::builder()
            .max_steps(400_000)
            .session(&p, GoalSpec::Deadlock { thread_locs: locs });
        let status = session.run_to_completion();
        let report = status.found().expect("the AB/BA deadlock must be synthesized");
        assert_eq!(report.execution.fault_tag, "deadlock");
        assert!(
            report.execution.schedule.segments.len() >= 2,
            "a deadlock schedule needs at least two thread segments"
        );
    }

    /// Regression test for `SearchStats::best_proximity`: it used to record
    /// the frontier priority key *after* the deadlock schedule-bias offset,
    /// so observer progress on deadlock goals jumped by multiples of the
    /// schedule weight (1e9). It must report the raw path distance.
    #[test]
    fn best_proximity_reports_raw_distance_on_deadlock_goals() {
        let (p, locs) = deadlocky();
        let mut session =
            EsdOptions::builder().session(&p, GoalSpec::Deadlock { thread_locs: locs });
        session.run_for(1);
        let proximity = session
            .progress_event()
            .best_proximity
            .expect("the proximity frontier computes a key on the first push");
        assert!(
            proximity < 1_000_000_000,
            "best_proximity {proximity} must be the raw path distance, not the \
             schedule-biased priority key (offset by multiples of 1e9)"
        );
        session.cancel();
    }

    #[test]
    fn builder_round_trips_every_option() {
        let options = EsdOptions::builder()
            .max_steps(123)
            .max_states(45)
            .seed(6)
            .frontier(FrontierKind::Dfs)
            .use_intermediate_goals(false)
            .use_critical_edges(false)
            .schedule_bias(false)
            .with_race_detection(true)
            .static_pruning(false)
            .race_candidate_pruning(false)
            .deadline(Duration::from_secs(9))
            .threads(4)
            .build();
        assert_eq!(options.max_steps, 123);
        assert_eq!(options.max_states, 45);
        assert_eq!(options.seed, 6);
        assert_eq!(options.frontier, FrontierKind::Dfs);
        assert!(!options.use_intermediate_goals);
        assert!(!options.use_critical_edges);
        assert!(!options.schedule_bias);
        assert!(options.with_race_detection);
        assert!(!options.static_pruning);
        assert!(!options.race_candidate_pruning);
        assert_eq!(options.deadline, Some(Duration::from_secs(9)));
        assert_eq!(options.threads, 4);
    }

    #[test]
    fn session_finds_the_goal_in_single_round_slices() {
        let (p, loc) = crashy();
        let mut session =
            EsdOptions::builder().max_steps(100_000).session(&p, GoalSpec::Crash { loc });
        let mut slices = 0u64;
        while session.poll().is_running() {
            session.run_for(1);
            slices += 1;
            assert!(slices < 1_000_000, "runaway session");
        }
        let report = session.poll().found().expect("crash synthesized").clone();
        assert_eq!(report.execution.inputs[0].value, 42);
        assert_eq!(session.rounds(), slices);
        // Further slices are no-ops on a finished session.
        assert!(session.run_for(10).found().is_some());
        assert_eq!(session.rounds(), slices);
    }

    #[test]
    fn cancel_returns_partial_stats_and_sticks() {
        let (p, loc) = crashy();
        let mut session = SynthesisSession::new(&p, GoalSpec::Crash { loc }, EsdOptions::default());
        session.run_for(3);
        assert!(session.poll().is_running());
        let stats = session.cancel();
        assert!(stats.steps > 0, "three rounds must have executed instructions");
        assert!(matches!(session.poll(), SessionStatus::Cancelled(_)));
        // A cancelled session cannot be resumed.
        assert!(matches!(session.run_for(100), SessionStatus::Cancelled(_)));
        assert!(session.cancel().steps >= stats.steps);
    }

    #[test]
    fn deadline_expires_a_session() {
        let (p, loc) = crashy();
        let mut session = EsdOptions::builder()
            .deadline(Duration::from_secs(0))
            .session(&p, GoalSpec::Crash { loc });
        assert!(matches!(session.run_for(10), SessionStatus::DeadlineExpired(_)));
    }

    /// An observer shared with the test through `Arc<Mutex<_>>` (observers
    /// are `Send`, so plain `Rc` no longer satisfies the trait bound).
    #[derive(Default)]
    struct Recording {
        progress: Vec<ProgressEvent>,
        finished: Option<&'static str>,
    }

    struct RecordingObserver(Arc<Mutex<Recording>>);

    impl Observer for RecordingObserver {
        fn on_progress(&mut self, event: &ProgressEvent) {
            self.0.lock().unwrap().progress.push(event.clone());
        }

        fn on_finish(&mut self, status: &SessionStatus) {
            self.0.lock().unwrap().finished = Some(match status {
                SessionStatus::Running => "running",
                SessionStatus::Found(_) => "found",
                SessionStatus::Exhausted(_) => "exhausted",
                SessionStatus::BudgetExceeded(_) => "budget",
                SessionStatus::DeadlineExpired(_) => "deadline",
                SessionStatus::Cancelled(_) => "cancelled",
            });
        }
    }

    #[test]
    fn observer_sees_progress_and_the_finish() {
        let (p, loc) = crashy();
        let recording = Arc::new(Mutex::new(Recording::default()));
        let mut session = EsdOptions::builder()
            .observer(Box::new(RecordingObserver(recording.clone())))
            .progress_every(2)
            .session(&p, GoalSpec::Crash { loc });
        session.run_to_completion();
        let recording = recording.lock().unwrap();
        assert_eq!(recording.finished, Some("found"));
        assert!(!recording.progress.is_empty(), "progress cadence of 2 must fire");
        let last = recording.progress.last().unwrap();
        assert!(last.steps > 0);
        assert!(last.rounds >= 2);
    }
}
