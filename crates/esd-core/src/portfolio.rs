//! A frontier portfolio: N synthesis sessions for the same job, time-sliced
//! round-robin on one machine.
//!
//! Which search frontier wins on a given workload is an empirical question —
//! the whole point of the paper's Figure 2/3 comparison — and answering it
//! used to cost N sequential full runs. A [`Portfolio`] instead creates one
//! [`SynthesisSession`](crate::session::SynthesisSession) per member (same program, same goal, one shared
//! static phase) and advances them in fixed-size round-robin slices until
//! the first member synthesizes an execution. The remaining members are
//! cancelled, and every member reports its partial [`SearchStats`] so the
//! caller still gets the comparison data.
//!
//! Because sessions are independent engines with their own seeds, a member's
//! trajectory is unaffected by the others: the winner's execution is exactly
//! what a solo run of that member would have synthesized (asserted by the
//! `portfolio_winner_matches_the_solo_run` integration test).
//!
//! A portfolio is the single-job special case of the multi-job
//! [`JobExecutor`]: [`Portfolio::run`] submits
//! one job whose members are the portfolio members to a round-robin executor,
//! so there is exactly one time-slicing loop in the codebase.

use crate::executor::{JobExecutor, JobSpec};
use crate::synth::{EsdOptions, SynthesisReport};
use esd_ir::Program;
use esd_symex::{FrontierKind, GoalSpec, SearchStats};

/// How many rounds each member advances per portfolio turn by default —
/// the executor's base slice length (one loop, one default).
pub use crate::executor::DEFAULT_SLICE_ROUNDS;

/// The frontier set [`Portfolio::run`] uses when no members were added: the
/// paper's proximity strategy, the three undirected baselines, and the
/// batched beam frontier.
pub const DEFAULT_FRONTIERS: [FrontierKind; 5] = [
    FrontierKind::Proximity,
    FrontierKind::Dfs,
    FrontierKind::Bfs,
    FrontierKind::Random,
    FrontierKind::Beam { width: esd_symex::DEFAULT_BEAM_WIDTH },
];

/// A portfolio of synthesis configurations raced against each other on one
/// job.
pub struct Portfolio {
    base: EsdOptions,
    members: Vec<(String, EsdOptions)>,
    slice_rounds: u64,
}

/// Why a portfolio member stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MemberOutcome {
    /// This member synthesized the execution first.
    Won,
    /// Another member won first; this one was cancelled mid-search.
    Preempted,
    /// The member exhausted its search space without reaching the goal.
    Exhausted,
    /// The member ran out of its instruction budget.
    BudgetExceeded,
    /// The member's wall-clock deadline passed.
    DeadlineExpired,
}

/// Per-member statistics of a portfolio run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MemberReport {
    /// The member's label (the frontier spelling unless given explicitly).
    pub label: String,
    /// The search frontier the member used.
    pub frontier: FrontierKind,
    /// The member's PRNG seed.
    pub seed: u64,
    /// Search rounds the member was advanced before the portfolio stopped.
    pub rounds: u64,
    /// Why the member stopped.
    pub outcome: MemberOutcome,
    /// The member's (possibly partial) search statistics.
    pub stats: SearchStats,
}

/// The winning member of a portfolio run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PortfolioWinner {
    /// Index into [`PortfolioResult::members`].
    pub member: usize,
    /// The winning member's label.
    pub label: String,
    /// The synthesized execution and its statistics — identical to what a
    /// solo run of the winning configuration would produce.
    pub report: SynthesisReport,
}

/// The result of [`Portfolio::run`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PortfolioResult {
    /// The first member to synthesize an execution, if any did.
    pub winner: Option<PortfolioWinner>,
    /// Every member's outcome and statistics, in the order they were added.
    pub members: Vec<MemberReport>,
}

impl PortfolioResult {
    /// The winning report, if any member won.
    pub fn report(&self) -> Option<&SynthesisReport> {
        self.winner.as_ref().map(|w| &w.report)
    }
}

impl Portfolio {
    /// Creates an empty portfolio whose members derive from `base` (running
    /// it without adding members races [`DEFAULT_FRONTIERS`]).
    pub fn new(base: EsdOptions) -> Self {
        Portfolio { base, members: Vec::new(), slice_rounds: DEFAULT_SLICE_ROUNDS }
    }

    /// A portfolio over default options.
    pub fn with_defaults() -> Self {
        Portfolio::new(EsdOptions::default())
    }

    /// Sets how many rounds each member advances per round-robin turn.
    pub fn slice_rounds(mut self, rounds: u64) -> Self {
        self.slice_rounds = rounds.max(1);
        self
    }

    /// Adds a member: the base options with the given search frontier.
    pub fn frontier(mut self, kind: FrontierKind) -> Self {
        let options = EsdOptions { frontier: kind, ..self.base.clone() };
        self.members.push((kind.to_string(), options));
        self
    }

    /// Adds one member per frontier kind.
    pub fn frontiers(mut self, kinds: impl IntoIterator<Item = FrontierKind>) -> Self {
        for kind in kinds {
            self = self.frontier(kind);
        }
        self
    }

    /// Adds a member: the base options with the given frontier and seed
    /// (several seeds of one stochastic frontier are a portfolio too).
    pub fn seeded(mut self, kind: FrontierKind, seed: u64) -> Self {
        let options = EsdOptions { frontier: kind, seed, ..self.base.clone() };
        self.members.push((format!("{kind}#{seed}"), options));
        self
    }

    /// Adds a fully custom member.
    pub fn member(mut self, label: impl Into<String>, options: EsdOptions) -> Self {
        self.members.push((label.into(), options));
        self
    }

    /// Races the members on one job: every member gets a session over a
    /// shared static phase, sessions advance round-robin `slice_rounds` at a
    /// time, and the first
    /// [`SessionStatus::Found`](crate::session::SessionStatus::Found) wins.
    /// The pending
    /// members are cancelled the moment the winner is observed — members
    /// later in the winning round never receive another slice — and keep
    /// their partial stats.
    ///
    /// Since the multi-job [`JobExecutor`] landed there is exactly one
    /// time-slicing loop in the codebase: this method submits a single job
    /// whose members are the portfolio members to a round-robin executor
    /// and unwraps its portfolio-shaped outcome.
    pub fn run(&self, program: &Program, goal: GoalSpec) -> PortfolioResult {
        let members: Vec<(String, EsdOptions)> = if self.members.is_empty() {
            DEFAULT_FRONTIERS
                .iter()
                .map(|&kind| (kind.to_string(), EsdOptions { frontier: kind, ..self.base.clone() }))
                .collect()
        } else {
            self.members.clone()
        };
        let mut spec = JobSpec::new("portfolio", program, goal);
        for (label, options) in members {
            spec = spec.member(label, options);
        }
        let mut executor = JobExecutor::round_robin().slice_rounds(self.slice_rounds);
        let handle = executor.submit(spec);
        executor.run_until_idle();
        executor.take(handle).expect("an idle executor has finished every job").result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SynthesisSession;
    use esd_analysis::StaticAnalysis;
    use esd_ir::{CmpOp, Loc, ProgramBuilder};
    use std::sync::Arc;

    fn crashy() -> (esd_ir::Program, Loc) {
        let mut pb = ProgramBuilder::new("portfolio_crashy");
        let mut loc = None;
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, 7);
            let bug = f.new_block("bug");
            let ok = f.new_block("ok");
            f.cond_br(c, bug, ok);
            f.switch_to(bug);
            let z = f.konst(0);
            loc = Some(Loc::new(esd_ir::FuncId(0), bug, f.next_inst_idx()));
            let v = f.load(z);
            f.output(v);
            f.ret_void();
            f.switch_to(ok);
            f.ret_void();
        });
        (pb.finish("main"), loc.unwrap())
    }

    #[test]
    fn portfolio_produces_a_winner_and_full_member_stats() {
        let (p, loc) = crashy();
        let result = Portfolio::with_defaults().run(&p, GoalSpec::Crash { loc });
        let winner = result.winner.as_ref().expect("some frontier finds the crash");
        assert_eq!(result.members.len(), DEFAULT_FRONTIERS.len());
        assert_eq!(result.members[winner.member].outcome, MemberOutcome::Won);
        assert_eq!(result.members[winner.member].label, winner.label);
        assert_eq!(winner.report.execution.inputs[0].value, 7);
        // Every non-winning member still reports its (partial) stats.
        for (i, member) in result.members.iter().enumerate() {
            if i != winner.member {
                assert_ne!(member.outcome, MemberOutcome::Won);
            }
        }
    }

    #[test]
    fn explicit_members_and_labels_are_preserved() {
        let (p, loc) = crashy();
        let result = Portfolio::with_defaults()
            .slice_rounds(16)
            .frontier(FrontierKind::Dfs)
            .seeded(FrontierKind::Random, 3)
            .member("custom", EsdOptions::builder().frontier(FrontierKind::Bfs).build())
            .run(&p, GoalSpec::Crash { loc });
        let labels: Vec<&str> = result.members.iter().map(|m| m.label.as_str()).collect();
        assert_eq!(labels, ["dfs", "random#3", "custom"]);
        assert!(result.winner.is_some());
    }

    /// A crash reachable only through the *second* of two forks, with a long
    /// detour on the not-taken side so the first fork's parent is still alive
    /// when the second fork is attempted: a member capped at one live state
    /// drops that fork and genuinely exhausts, while a member with the
    /// critical-edge guidance walks straight to the goal.
    fn second_fork_crashy() -> (esd_ir::Program, Loc) {
        let mut pb = ProgramBuilder::new("second_fork");
        let mut loc = None;
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let y = f.getchar();
            let t1 = f.new_block("t1");
            let e1 = f.new_block("e1");
            let t2 = f.new_block("t2");
            let bug = f.new_block("bug");
            let c1 = f.cmp(CmpOp::Eq, x, 1);
            f.cond_br(c1, t1, e1);
            f.switch_to(t1);
            // Long detour: keeps this state alive (and the pool at its cap)
            // while the e1 fork reaches its own branch.
            for _ in 0..24 {
                f.nop();
            }
            f.ret_void();
            f.switch_to(e1);
            let c2 = f.cmp(CmpOp::Eq, y, 1);
            f.cond_br(c2, t2, bug);
            f.switch_to(t2);
            f.ret_void();
            f.switch_to(bug);
            let z = f.konst(0);
            loc = Some(Loc::new(esd_ir::FuncId(0), bug, f.next_inst_idx()));
            let v = f.load(z);
            f.output(v);
            f.ret_void();
        });
        (pb.finish("main"), loc.unwrap())
    }

    /// Turn fairness: when an earlier member goes terminal (genuinely
    /// `Exhausted`, not merely preempted), the round-robin must keep slicing
    /// the remaining members, and a later-index member can still win. The
    /// per-member `rounds` accounting must stay exact across the winning
    /// turn — a member that stops mid-slice reports the rounds it actually
    /// ran, byte-for-byte what a solo run of the same configuration reports.
    #[test]
    fn later_member_wins_after_earlier_member_exhausts() {
        let (p, loc) = second_fork_crashy();
        let goal = GoalSpec::Crash { loc };
        let starved = EsdOptions::builder()
            .max_states(1)
            .use_critical_edges(false)
            .frontier(FrontierKind::Bfs)
            .build();
        let guided = EsdOptions::default();
        let result = Portfolio::with_defaults()
            .slice_rounds(64)
            .member("starved", starved.clone())
            .member("guided", guided.clone())
            .run(&p, goal.clone());

        let winner = result.winner.as_ref().expect("the guided member finds the crash");
        assert_eq!(winner.member, 1, "the later-index member must win");
        assert_eq!(result.members[0].outcome, MemberOutcome::Exhausted);
        assert_eq!(result.members[1].outcome, MemberOutcome::Won);

        // Exact rounds accounting: each member ran precisely as many rounds
        // as a solo session of its configuration runs to the same verdict.
        let program = Arc::new(p.clone());
        let analysis = Arc::new(StaticAnalysis::compute_multi(&program, &goal.primary_locs()));
        for (options, member) in [(starved, &result.members[0]), (guided, &result.members[1])] {
            let mut solo = SynthesisSession::from_parts(
                program.clone(),
                analysis.clone(),
                goal.clone(),
                options,
                None,
                0,
            );
            solo.run_to_completion();
            assert_eq!(
                solo.rounds(),
                member.rounds,
                "{}: portfolio slicing must not distort the rounds count",
                member.label
            );
        }
    }

    #[test]
    fn goalless_portfolio_reports_no_winner() {
        // A goal no path reaches: every member exhausts (or hits budget) and
        // the portfolio reports winner = None with all stats present.
        let mut pb = ProgramBuilder::new("clean");
        pb.function("main", 0, |f| {
            let dead = f.new_block("dead");
            f.ret_void();
            f.switch_to(dead);
            f.nop();
            f.ret_void();
        });
        let p = pb.finish("main");
        let goal = GoalSpec::Crash { loc: Loc::new(p.entry, esd_ir::BlockId(1), 0) };
        let result = Portfolio::new(EsdOptions::builder().max_steps(10_000).build()).run(&p, goal);
        assert!(result.winner.is_none());
        assert_eq!(result.members.len(), DEFAULT_FRONTIERS.len());
        for member in &result.members {
            assert!(matches!(
                member.outcome,
                MemberOutcome::Exhausted | MemberOutcome::BudgetExceeded
            ));
        }
    }
}
