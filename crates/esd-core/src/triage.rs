//! Automated bug triage and deduplication (§8, usage models).
//!
//! "ESD can be used to automatically identify reports of the same bug: if two
//! synthesized executions are identical, then they correspond to the same
//! bug." In practice byte-identical executions are too strict a criterion
//! (two reports of the same bug may differ in irrelevant input words), so the
//! comparison here is staged: identical executions, then same failure at the
//! same location, then different bugs.

use crate::execfile::SynthesizedExecution;
use serde::{Deserialize, Serialize};

/// The verdict of comparing two synthesized executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TriageResult {
    /// The synthesized executions are identical — certainly the same bug.
    IdenticalExecution,
    /// The executions differ but fail the same way at the same location —
    /// treated as duplicates by the triage system.
    SameFailure,
    /// Different bugs.
    Different,
}

/// Compares two synthesized executions for triage purposes.
pub fn same_bug(a: &SynthesizedExecution, b: &SynthesizedExecution) -> TriageResult {
    if a == b {
        return TriageResult::IdenticalExecution;
    }
    if a.program == b.program && a.fault_tag == b.fault_tag && a.fault_loc == b.fault_loc {
        return TriageResult::SameFailure;
    }
    TriageResult::Different
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execfile::InputEntry;
    use esd_concurrency::{Schedule, SegmentStop};
    use esd_ir::{BlockId, FuncId, InputSource, Loc};

    fn exec(fault: &str, loc_idx: u32, input: i64) -> SynthesizedExecution {
        let mut schedule = Schedule::new();
        schedule.push(0, SegmentStop::Steps(5));
        SynthesizedExecution {
            program: "p".into(),
            fault_tag: fault.into(),
            fault_loc: Some(Loc::new(FuncId(0), BlockId(1), loc_idx)),
            inputs: vec![InputEntry {
                thread: 0,
                seq: 0,
                source: InputSource::Stdin,
                value: input,
            }],
            schedule,
        }
    }

    #[test]
    fn identical_executions_are_the_same_bug() {
        assert_eq!(
            same_bug(&exec("segfault", 1, 7), &exec("segfault", 1, 7)),
            TriageResult::IdenticalExecution
        );
    }

    #[test]
    fn same_fault_same_location_is_a_duplicate() {
        assert_eq!(
            same_bug(&exec("segfault", 1, 7), &exec("segfault", 1, 9)),
            TriageResult::SameFailure
        );
    }

    #[test]
    fn different_location_or_fault_is_a_different_bug() {
        assert_eq!(
            same_bug(&exec("segfault", 1, 7), &exec("segfault", 2, 7)),
            TriageResult::Different
        );
        assert_eq!(
            same_bug(&exec("segfault", 1, 7), &exec("invalid-free", 1, 7)),
            TriageResult::Different
        );
    }
}
