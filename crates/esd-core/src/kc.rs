//! The KC baseline: "a hybrid system that embodies the Klee and Chess
//! techniques" (§7.2).
//!
//! KC uses the same symbolic-execution substrate as ESD but replaces ESD's
//! goal-directed heuristics with Klee's stock searchers (DFS or RandomPath)
//! and bounds thread preemptions at two, as Chess does. Like the bug-finding
//! tools it models, KC is not guided toward the reported bug — the comparison
//! in Figures 2 and 3 measures how long each approach takes to stumble on a
//! path to the same goal.

use crate::execfile::SynthesizedExecution;
use esd_analysis::StaticAnalysis;
use esd_ir::Program;
use esd_symex::{Engine, EngineConfig, GoalSpec, SearchConfig, SearchOutcome, SearchStats};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which Klee searcher KC uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KcStrategy {
    /// Depth-first search ("can be thought of as equivalent to an exhaustive
    /// search").
    Dfs,
    /// The quasi-random RandomPath strategy.
    RandomPath {
        /// PRNG seed.
        seed: u64,
    },
}

/// The result of a KC run.
#[derive(Debug, Clone)]
pub struct KcResult {
    /// The synthesized execution, if KC found a path to the goal.
    pub execution: Option<SynthesizedExecution>,
    /// Search statistics.
    pub stats: SearchStats,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// True if the run stopped because the budget (the "1-hour cap"
    /// equivalent) ran out.
    pub hit_budget: bool,
}

/// Runs the KC baseline against an explicit goal with the given instruction
/// budget.
pub fn kc_synthesize(
    program: &Program,
    goal: GoalSpec,
    strategy: KcStrategy,
    max_steps: u64,
) -> KcResult {
    let start = Instant::now();
    let analysis = Arc::new(StaticAnalysis::compute_multi(program, &goal.primary_locs()));
    let search = match strategy {
        KcStrategy::Dfs => SearchConfig::dfs(),
        KcStrategy::RandomPath { seed } => SearchConfig::random(seed),
    };
    let config = EngineConfig { max_steps, ..EngineConfig::kc(search) };
    let mut engine = Engine::new(Arc::new(program.clone()), analysis, goal, config);
    match engine.run() {
        SearchOutcome::Found(synth) => KcResult {
            execution: Some(SynthesizedExecution::from_synthesized(&program.name, &synth)),
            stats: synth.stats.clone(),
            elapsed: start.elapsed(),
            hit_budget: false,
        },
        SearchOutcome::Exhausted(stats) => {
            KcResult { execution: None, stats, elapsed: start.elapsed(), hit_budget: false }
        }
        SearchOutcome::BudgetExceeded(stats) => {
            KcResult { execution: None, stats, elapsed: start.elapsed(), hit_budget: true }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{CmpOp, Loc, ProgramBuilder};

    #[test]
    fn kc_finds_simple_sequential_bugs() {
        let mut pb = ProgramBuilder::new("simple");
        let mut bug_loc = None;
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let c = f.cmp(CmpOp::Eq, x, 3);
            let bug = f.new_block("bug");
            let ok = f.new_block("ok");
            f.cond_br(c, bug, ok);
            f.switch_to(bug);
            let z = f.konst(0);
            bug_loc = Some(Loc::new(esd_ir::FuncId(0), bug, f.next_inst_idx()));
            let v = f.load(z);
            f.output(v);
            f.ret_void();
            f.switch_to(ok);
            f.ret_void();
        });
        let p = pb.finish("main");
        let goal = GoalSpec::Crash { loc: bug_loc.unwrap() };
        let r = kc_synthesize(&p, goal.clone(), KcStrategy::Dfs, 100_000);
        assert!(r.execution.is_some());
        let r = kc_synthesize(&p, goal, KcStrategy::RandomPath { seed: 1 }, 100_000);
        assert!(r.execution.is_some());
    }

    #[test]
    fn kc_respects_its_budget() {
        // A program with an unbounded input-dependent loop and no bug: KC
        // must stop at the budget and report it.
        let mut pb = ProgramBuilder::new("loopy");
        pb.function("main", 0, |f| {
            let head = f.new_block("head");
            let body = f.new_block("body");
            let done = f.new_block("done");
            f.br(head);
            f.switch_to(head);
            let x = f.getchar();
            let c = f.cmp(CmpOp::Ne, x, 0);
            f.cond_br(c, body, done);
            f.switch_to(body);
            f.nop();
            f.br(head);
            f.switch_to(done);
            let z = f.konst(0);
            let v = f.load(z); // never part of the goal below
            f.output(v);
            f.ret_void();
        });
        let p = pb.finish("main");
        let goal = GoalSpec::Crash { loc: Loc::new(p.entry, esd_ir::BlockId(1), 99) };
        let r = kc_synthesize(&p, goal, KcStrategy::RandomPath { seed: 7 }, 5_000);
        assert!(r.execution.is_none());
        assert!(r.hit_budget || r.stats.steps <= 5_000);
    }
}
