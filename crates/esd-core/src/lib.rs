//! Execution synthesis (ESD) — the top-level crate.
//!
//! This crate ties the pieces together the way the paper's tool does:
//!
//! * [`report`] — the bug report: a coredump plus a bug-kind hint, and the
//!   goal-extraction step (§3.1) that turns it into a search goal `<B, C>`.
//! * [`execfile`] — the synthesized execution file (§5.1): concrete values
//!   for every program input plus the serialized thread schedule, stored as
//!   JSON so it can be attached to a bug report and handed to the playback
//!   environment (`esd-playback`).
//! * [`synth`] — the `esdsynth` equivalent: static phase, proximity-guided
//!   dynamic phase, constraint solving, execution-file emission.
//! * [`session`] — the resumable form of `esdsynth`: stepwise
//!   [`SynthesisSession`]s with progress [`Observer`]s, deadlines and
//!   cancellation, configured via the builder-style [`EsdOptionsBuilder`].
//! * [`portfolio`] — N sessions with different search frontiers time-sliced
//!   round-robin over the same job; first winner takes it.
//! * [`executor`] — the multi-job layer: a [`JobExecutor`] holds N
//!   independent jobs (each a session or a per-job portfolio) and
//!   time-slices them under a pluggable [`FairnessPolicy`], with per-job
//!   observer fan-out and aggregate [`ExecutorStats`].
//! * [`snapshot`] — versioned, checksummed snapshot envelopes for durable
//!   sessions (see [`session::SessionSnapshot`] /
//!   [`executor::ExecutorSnapshot`]).
//! * [`journal`] — the append-only commit log of executor decisions and the
//!   `reduce(snapshot, journal)` crash recovery behind
//!   [`JobExecutor::recover`](executor::JobExecutor::recover).
//! * [`kc`] — the KC baseline (Klee searchers + Chess preemption bounding).
//! * [`stress`] — the brute-force stress/random-testing baseline (§7.2),
//!   which doubles as the way workload failures "happen in production" and
//!   produce coredumps.
//! * [`triage`] — automated bug triage / deduplication via synthesized
//!   executions (§8, usage models).

// Documentation enforcement (see ARCHITECTURE.md): every public item must
// carry rustdoc, extended from the esd-concurrency pilot now that the
// session/portfolio redesign stabilized this crate's API.
#![deny(missing_docs)]

pub mod execfile;
pub mod executor;
pub mod journal;
pub mod kc;
pub mod portfolio;
pub mod report;
pub mod session;
pub mod snapshot;
pub mod stress;
pub mod synth;
pub mod triage;

pub use execfile::{InputEntry, SynthesizedExecution};
pub use executor::{
    DeadlineFirst, ExecutorSnapshot, ExecutorStats, FairnessPolicy, JobExecutor, JobHandle,
    JobOutcome, JobPhase, JobProgress, JobSnapshot, JobSpec, JobStat, JobStatus, JobVerdict,
    JobView, RoundRobin, WeightedByPriority,
};
pub use journal::{
    JournalDamage, JournalRecord, JournalScan, JournalWriter, Recovery, RecoveryError,
};
pub use kc::{kc_synthesize, KcStrategy};
pub use portfolio::{MemberOutcome, MemberReport, Portfolio, PortfolioResult, PortfolioWinner};
pub use report::{extract_goal, BugKind, BugReport};
pub use session::{
    EsdOptionsBuilder, Observer, ProgressEvent, SessionSnapshot, SessionStatus, SynthesisSession,
};
pub use snapshot::{SnapshotError, SNAPSHOT_FORMAT_VERSION};
pub use stress::{stress_test, StressConfig, StressOutcome};
pub use synth::{Esd, EsdOptions, SynthesisError, SynthesisReport};
pub use triage::{same_bug, TriageResult};
