//! Execution synthesis (ESD) — the top-level crate.
//!
//! This crate ties the pieces together the way the paper's tool does:
//!
//! * [`report`] — the bug report: a coredump plus a bug-kind hint, and the
//!   goal-extraction step (§3.1) that turns it into a search goal `<B, C>`.
//! * [`execfile`] — the synthesized execution file (§5.1): concrete values
//!   for every program input plus the serialized thread schedule, stored as
//!   JSON so it can be attached to a bug report and handed to the playback
//!   environment (`esd-playback`).
//! * [`synth`] — the `esdsynth` equivalent: static phase, proximity-guided
//!   dynamic phase, constraint solving, execution-file emission.
//! * [`kc`] — the KC baseline (Klee searchers + Chess preemption bounding).
//! * [`stress`] — the brute-force stress/random-testing baseline (§7.2),
//!   which doubles as the way workload failures "happen in production" and
//!   produce coredumps.
//! * [`triage`] — automated bug triage / deduplication via synthesized
//!   executions (§8, usage models).

pub mod execfile;
pub mod kc;
pub mod report;
pub mod stress;
pub mod synth;
pub mod triage;

pub use execfile::{InputEntry, SynthesizedExecution};
pub use kc::{kc_synthesize, KcStrategy};
pub use report::{extract_goal, BugKind, BugReport};
pub use stress::{stress_test, StressConfig, StressOutcome};
pub use synth::{Esd, EsdOptions, SynthesisError, SynthesisReport};
pub use triage::{same_bug, TriageResult};
