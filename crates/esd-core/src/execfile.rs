//! The synthesized execution file (§5.1).
//!
//! "The synthesized execution file contains concrete values for all input
//! parameters, all interactions with the external environment, and the
//! complete thread schedule." It is a JSON artifact that `esdsynth` produces
//! and `esdplay` consumes, and it can be attached to bug reports for triage.

use esd_concurrency::Schedule;
use esd_ir::{InputSource, Loc, ThreadId};
use esd_symex::Synthesized;
use serde::{Deserialize, Serialize};

/// One concrete environment input word.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputEntry {
    /// The thread that reads this word.
    pub thread: u32,
    /// The per-thread sequence number of the read.
    pub seq: u32,
    /// Where the word comes from (stdin, an environment variable, …).
    pub source: InputSource,
    /// The concrete value the playback environment must serve.
    pub value: i64,
}

/// A complete synthesized execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthesizedExecution {
    /// Name of the program this execution belongs to.
    pub program: String,
    /// Short tag of the failure the execution reproduces
    /// (e.g. `"deadlock"`, `"segfault"`).
    pub fault_tag: String,
    /// Location of the failure, when applicable.
    pub fault_loc: Option<Loc>,
    /// Concrete inputs.
    pub inputs: Vec<InputEntry>,
    /// The serialized (strict) thread schedule.
    pub schedule: Schedule,
}

impl SynthesizedExecution {
    /// Builds the execution file from a synthesis result.
    pub fn from_synthesized(program: &str, synth: &Synthesized) -> Self {
        SynthesizedExecution {
            program: program.to_string(),
            fault_tag: synth.fault.tag().to_string(),
            fault_loc: synth.fault_loc,
            inputs: synth
                .inputs
                .iter()
                .map(|(info, value)| InputEntry {
                    thread: info.thread.0,
                    seq: info.seq,
                    source: info.source.clone(),
                    value: *value,
                })
                .collect(),
            schedule: synth.schedule.clone(),
        }
    }

    /// The inputs as `((thread, seq), value)` pairs, the form the playback
    /// input provider consumes.
    pub fn input_map(&self) -> Vec<((ThreadId, u32), i64)> {
        self.inputs.iter().map(|e| ((ThreadId(e.thread), e.seq), e.value)).collect()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("execution file serializes")
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes the execution file to disk.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads an execution file from disk.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_concurrency::SegmentStop;
    use esd_ir::FaultKind;
    use esd_symex::{SearchStats, SymVarInfo};

    fn sample() -> SynthesizedExecution {
        let mut schedule = Schedule::new();
        schedule.push(0, SegmentStop::Steps(10));
        schedule.push(1, SegmentStop::Blocked);
        let synth = Synthesized {
            inputs: vec![
                (
                    SymVarInfo { thread: ThreadId(0), seq: 0, source: InputSource::Stdin },
                    'm' as i64,
                ),
                (
                    SymVarInfo {
                        thread: ThreadId(0),
                        seq: 1,
                        source: InputSource::Env("mode".into()),
                    },
                    'Y' as i64,
                ),
            ],
            schedule,
            fault: FaultKind::Deadlock,
            fault_loc: None,
            stats: SearchStats::default(),
        };
        SynthesizedExecution::from_synthesized("listing1", &synth)
    }

    #[test]
    fn conversion_preserves_inputs_and_schedule() {
        let e = sample();
        assert_eq!(e.program, "listing1");
        assert_eq!(e.fault_tag, "deadlock");
        assert_eq!(e.inputs.len(), 2);
        assert_eq!(e.input_map()[0], ((ThreadId(0), 0), 'm' as i64));
        assert_eq!(e.schedule.segments.len(), 2);
    }

    #[test]
    fn json_roundtrip() {
        let e = sample();
        let json = e.to_json();
        assert!(json.contains("deadlock"));
        let back = SynthesizedExecution::from_json(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn save_and_load() {
        let e = sample();
        let dir = std::env::temp_dir();
        let path = dir.join("esd_execfile_test.json");
        e.save(&path).unwrap();
        let back = SynthesizedExecution::load(&path).unwrap();
        assert_eq!(e, back);
        let _ = std::fs::remove_file(&path);
    }
}
