//! The `esdsynth` facade: from a bug report to a synthesized execution file.
//!
//! [`Esd::synthesize`] is the blocking one-shot entry point; it is a thin
//! wrapper over a [`SynthesisSession`],
//! the resumable form that supports progress observation, deadlines,
//! cancellation and time-slicing (see [`crate::session`] and
//! [`crate::portfolio`]).

use crate::report::{extract_goal, BugKind, BugReport};
use crate::session::{EsdOptionsBuilder, SessionStatus, SynthesisSession};
use crate::SynthesizedExecution;
use esd_ir::Program;
use esd_symex::{FrontierKind, GoalSpec, SearchStats};
use std::time::Duration;

/// Knobs for a synthesis run (sensible defaults reproduce the paper's ESD
/// configuration; the ablation benches flip individual heuristics off).
///
/// Prefer constructing these with the chainable [`EsdOptions::builder`]:
///
/// ```
/// use esd_core::EsdOptions;
/// use esd_symex::FrontierKind;
///
/// let options = EsdOptions::builder()
///     .max_steps(1_000_000)
///     .frontier(FrontierKind::beam())
///     .build();
/// assert_eq!(options.max_steps, 1_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EsdOptions {
    /// Total instruction budget for the dynamic phase.
    pub max_steps: u64,
    /// Maximum number of live execution states.
    pub max_states: usize,
    /// Random seed for the uniform queue choice.
    pub seed: u64,
    /// Which search frontier orders the exploration (the paper's
    /// proximity-guided frontier by default; DFS / BFS / random / beam are
    /// available for comparison — see `esd_symex::frontier`).
    pub frontier: FrontierKind,
    /// Use intermediate goals from the static phase.
    pub use_intermediate_goals: bool,
    /// Abandon paths that violate critical edges.
    pub use_critical_edges: bool,
    /// Use the deadlock schedule-distance bias.
    pub schedule_bias: bool,
    /// Enable lockset-race-directed preemptions (`--with-race-det`).
    pub with_race_detection: bool,
    /// Consult the static phase's interval-analysis branch verdicts to skip
    /// solver queries on branches proven one-sided for all inputs (see
    /// `esd_symex::EngineConfig::static_pruning`). On by default;
    /// `ESD_STATIC_PRUNING=0` turns it off in the benches and CI.
    pub static_pruning: bool,
    /// Consult the static phase's race-pair candidates in race-preemption
    /// mode: yields with no candidate-pair material around them skip the
    /// speculative preemption fork; accesses the dynamic detector flags
    /// always fork regardless (see
    /// `esd_symex::EngineConfig::race_candidate_pruning`). On by default;
    /// `ESD_RACE_CANDIDATES=0` turns it off in the benches and CI.
    pub race_candidate_pruning: bool,
    /// Optional wall-clock deadline for the search, measured from session
    /// creation.
    pub deadline: Option<Duration>,
    /// Worker threads for advancing multi-state frontier batches (the beam
    /// frontier): `1` runs everything on the calling thread, `0` uses all
    /// available parallelism. Purely a wall-clock knob — the synthesized
    /// execution is byte-identical for every thread count (see
    /// `esd_symex::EngineConfig::threads`).
    pub threads: usize,
}

impl Default for EsdOptions {
    fn default() -> Self {
        EsdOptions {
            max_steps: 5_000_000,
            max_states: 50_000,
            seed: 1,
            frontier: FrontierKind::Proximity,
            use_intermediate_goals: true,
            use_critical_edges: true,
            schedule_bias: true,
            with_race_detection: false,
            static_pruning: true,
            race_candidate_pruning: true,
            deadline: None,
            threads: 1,
        }
    }
}

impl EsdOptions {
    /// Starts a builder over the default options; finish with
    /// [`build`](EsdOptionsBuilder::build),
    /// [`synthesizer`](EsdOptionsBuilder::synthesizer) or
    /// [`session`](EsdOptionsBuilder::session).
    pub fn builder() -> EsdOptionsBuilder {
        EsdOptionsBuilder::default()
    }
}

/// Why a synthesis attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// The coredump could not be turned into a goal.
    GoalExtraction(String),
    /// The search space was exhausted without reaching the goal.
    Exhausted,
    /// The step budget was exceeded before reaching the goal.
    BudgetExceeded,
    /// The wall-clock deadline passed before reaching the goal.
    DeadlineExpired,
    /// The underlying session was cancelled before reaching the goal.
    Cancelled,
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::GoalExtraction(why) => {
                write!(f, "the bug report could not be turned into a goal: {why}")
            }
            SynthesisError::Exhausted => {
                write!(f, "the search space was exhausted without reaching the goal")
            }
            SynthesisError::BudgetExceeded => {
                write!(f, "the step budget was exceeded before reaching the goal")
            }
            SynthesisError::DeadlineExpired => {
                write!(f, "the wall-clock deadline passed before reaching the goal")
            }
            SynthesisError::Cancelled => {
                write!(f, "the session was cancelled before reaching the goal")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// The result of a successful synthesis run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SynthesisReport {
    /// The synthesized execution (inputs + schedule), ready for playback.
    pub execution: SynthesizedExecution,
    /// The goal that was pursued.
    pub goal: GoalSpec,
    /// Search statistics.
    pub stats: SearchStats,
    /// Wall-clock time of the whole synthesis (static + dynamic phase).
    pub elapsed: Duration,
    /// Other (unreported) bugs stumbled upon during the search.
    pub other_bugs: Vec<(esd_ir::FaultKind, Option<esd_ir::Loc>)>,
}

/// The ESD synthesizer.
pub struct Esd {
    options: EsdOptions,
}

impl Esd {
    /// Creates a synthesizer with the given options.
    pub fn new(options: EsdOptions) -> Self {
        Esd { options }
    }

    /// Creates a synthesizer with default options.
    pub fn with_defaults() -> Self {
        Esd::new(EsdOptions::default())
    }

    /// The options this synthesizer runs with.
    pub fn options(&self) -> &EsdOptions {
        &self.options
    }

    /// Synthesizes an execution reproducing the failure in `report`
    /// (the `esdsynth <coredump> <program>` entry point).
    pub fn synthesize(
        &self,
        program: &Program,
        report: &BugReport,
    ) -> Result<SynthesisReport, SynthesisError> {
        let goal = extract_goal(program, report)
            .map_err(|e| SynthesisError::GoalExtraction(format!("{e:?}")))?;
        let race = report.kind() == BugKind::Race || self.options.with_race_detection;
        self.synthesize_goal(program, goal, race)
    }

    /// Synthesizes an execution for an explicit goal (used by the workload
    /// harness, and by the "validate a static-analysis report" usage model
    /// where there is no coredump yet).
    ///
    /// This is a convenience wrapper that runs a
    /// [`SynthesisSession`] to completion;
    /// callers that need progress events, deadlines, cancellation or
    /// time-slicing should create the session themselves (see
    /// [`Esd::session`]).
    pub fn synthesize_goal(
        &self,
        program: &Program,
        goal: GoalSpec,
        race_preemptions: bool,
    ) -> Result<SynthesisReport, SynthesisError> {
        let mut session = self.session_with_race(program, goal, race_preemptions);
        session.run_to_completion();
        match session.into_status() {
            SessionStatus::Found(report) => Ok(*report),
            SessionStatus::Exhausted(_) => Err(SynthesisError::Exhausted),
            SessionStatus::BudgetExceeded(_) => Err(SynthesisError::BudgetExceeded),
            SessionStatus::DeadlineExpired(_) => Err(SynthesisError::DeadlineExpired),
            SessionStatus::Cancelled(_) => Err(SynthesisError::Cancelled),
            SessionStatus::Running => unreachable!("run_to_completion returned while running"),
        }
    }

    /// Creates a resumable [`SynthesisSession`] for `goal` with this
    /// synthesizer's options.
    pub fn session(&self, program: &Program, goal: GoalSpec) -> SynthesisSession {
        SynthesisSession::new(program, goal, self.options.clone())
    }

    fn session_with_race(
        &self,
        program: &Program,
        goal: GoalSpec,
        race_preemptions: bool,
    ) -> SynthesisSession {
        // The explicit parameter governs, exactly as it did when this method
        // drove the engine directly (`synthesize` folds the option in before
        // calling here; sessions created via the builder use the option).
        let mut options = self.options.clone();
        options.with_race_detection = race_preemptions;
        SynthesisSession::new(program, goal, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{
        interp::{InterpreterConfig, MapInputs, ZeroInputs},
        CmpOp, Interpreter, ProgramBuilder, ThreadId,
    };

    /// A crash that needs a specific input: reproduce it concretely to get a
    /// coredump, then synthesize from the coredump alone and check the
    /// synthesized inputs re-trigger it.
    #[test]
    fn end_to_end_crash_synthesis_from_coredump() {
        let mut pb = ProgramBuilder::new("e2e");
        pb.function("main", 0, |f| {
            let x = f.getchar();
            let is_q = f.cmp(CmpOp::Eq, x, 'q' as i64);
            let bug = f.new_block("bug");
            let ok = f.new_block("ok");
            f.cond_br(is_q, bug, ok);
            f.switch_to(bug);
            let null = f.konst(0);
            let v = f.load(null);
            f.output(v);
            f.ret_void();
            f.switch_to(ok);
            f.output(0);
            f.ret_void();
        });
        let p = pb.finish("main");

        // The failure "happens in production" with input 'q'.
        let mut interp = Interpreter::new(
            &p,
            Box::new(MapInputs::from_entries([((ThreadId(0), 0), 'q' as i64)])),
        );
        let run = interp.run(&InterpreterConfig::default());
        let dump = run.outcome.coredump().expect("production failure").clone();

        // ESD starts from the coredump only.
        let esd = Esd::with_defaults();
        let report = BugReport::from_coredump(dump);
        let result = esd.synthesize(&p, &report).expect("synthesis succeeds");
        let stdin = result.execution.inputs.iter().find(|i| i.seq == 0).unwrap().value;
        assert_eq!(stdin, 'q' as i64, "the synthesized input must re-trigger the crash");
        assert_eq!(result.execution.fault_tag, "segfault");
        assert!(result.stats.steps > 0);
    }

    #[test]
    fn synthesis_reports_exhaustion_for_bug_free_programs() {
        let mut pb = ProgramBuilder::new("clean");
        pb.function("main", 0, |f| {
            let dead = f.new_block("dead");
            f.ret_void();
            f.switch_to(dead);
            let z = f.konst(0);
            let v = f.load(z);
            f.output(v);
            f.ret_void();
        });
        let p = pb.finish("main");
        // Fabricate a report pointing at the unreachable block.
        let mut interp = Interpreter::new(&p, Box::new(ZeroInputs));
        let _ = interp.run(&InterpreterConfig::default());
        let goal =
            esd_symex::GoalSpec::Crash { loc: esd_ir::Loc::new(p.entry, esd_ir::BlockId(1), 1) };
        let esd = Esd::with_defaults();
        let err = esd.synthesize_goal(&p, goal, false).unwrap_err();
        assert_eq!(err, SynthesisError::Exhausted);
    }
}
