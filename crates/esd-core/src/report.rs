//! Bug reports and goal extraction (§3.1).
//!
//! The input to ESD is "the coredump associated with a bug report and the
//! program the developer is trying to debug". Goal extraction turns the
//! coredump into the search goal: the faulting instruction for crashes, or
//! the set of blocked-lock locations for deadlocks.

use esd_ir::{CoreDump, FaultKind, Loc, Program};
use esd_symex::GoalSpec;
use serde::{Deserialize, Serialize};

/// The bug-kind hint the developer passes on the `esdsynth` command line
/// (`--crash | --deadlock | --race`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BugKind {
    /// A crash (segfault, invalid free, overflow, failed assertion, …).
    Crash,
    /// A hang caused by a deadlock.
    Deadlock,
    /// A failure caused by a data race (goal is where the inconsistency was
    /// detected, e.g. a failed assertion; race-directed preemptions are
    /// enabled during synthesis).
    Race,
}

impl BugKind {
    /// Infers the bug kind from the coredump's fault, when no hint is given.
    pub fn infer(dump: &CoreDump) -> BugKind {
        match dump.fault {
            FaultKind::Deadlock => BugKind::Deadlock,
            _ => BugKind::Crash,
        }
    }
}

/// A bug report: everything ESD gets from the field.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BugReport {
    /// The coredump captured when the failure occurred.
    pub coredump: CoreDump,
    /// The developer's bug-kind hint (optional; inferred from the coredump
    /// when absent).
    pub kind: Option<BugKind>,
}

impl BugReport {
    /// Wraps a coredump with an explicit kind hint.
    pub fn new(coredump: CoreDump, kind: BugKind) -> Self {
        BugReport { coredump, kind: Some(kind) }
    }

    /// Wraps a coredump, inferring the kind.
    pub fn from_coredump(coredump: CoreDump) -> Self {
        BugReport { coredump, kind: None }
    }

    /// The effective bug kind.
    pub fn kind(&self) -> BugKind {
        self.kind.unwrap_or_else(|| BugKind::infer(&self.coredump))
    }
}

/// Errors during goal extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoalExtractionError {
    /// The coredump has no faulting location (e.g. a corrupted stack, like
    /// the ghttpd coredump in the paper, which had to be repaired by hand).
    MissingFaultLocation,
    /// A deadlock report without any thread blocked on a mutex.
    NoBlockedThreads,
}

/// Extracts the search goal `<B, C>` from a bug report (§3.1).
///
/// * For crashes, `B` is the faulting instruction (the condition `C` — the
///   offending value — is carried by the fault kind itself and checked when
///   the synthesized state faults in the same way).
/// * For deadlocks, the goal is the set of locations at which the reported
///   threads were blocked acquiring their "inner" locks.
pub fn extract_goal(
    _program: &Program,
    report: &BugReport,
) -> Result<GoalSpec, GoalExtractionError> {
    match report.kind() {
        BugKind::Crash | BugKind::Race => {
            let loc = report
                .coredump
                .faulting_loc
                .or_else(|| {
                    report
                        .coredump
                        .faulting_thread
                        .and_then(|t| report.coredump.thread(t))
                        .and_then(|t| t.innermost_loc())
                })
                .ok_or(GoalExtractionError::MissingFaultLocation)?;
            Ok(GoalSpec::Crash { loc })
        }
        BugKind::Deadlock => {
            let locs: Vec<Loc> = report
                .coredump
                .mutex_blocked_threads()
                .iter()
                .filter_map(|t| t.innermost_loc())
                .collect();
            if locs.is_empty() {
                return Err(GoalExtractionError::NoBlockedThreads);
            }
            Ok(GoalSpec::Deadlock { thread_locs: locs })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_ir::{
        interp::{InterpreterConfig, SchedulerKind, ZeroInputs},
        Interpreter, ProgramBuilder,
    };

    fn crash_dump() -> (Program, CoreDump) {
        let mut pb = ProgramBuilder::new("crash");
        pb.function("main", 0, |f| {
            let z = f.konst(0);
            let v = f.load(z);
            f.output(v);
            f.ret_void();
        });
        let p = pb.finish("main");
        let mut i = Interpreter::new(&p, Box::new(ZeroInputs));
        let r = i.run(&InterpreterConfig::default());
        let dump = r.outcome.coredump().unwrap().clone();
        (p, dump)
    }

    #[test]
    fn crash_goal_is_the_faulting_instruction() {
        let (p, dump) = crash_dump();
        let report = BugReport::from_coredump(dump.clone());
        assert_eq!(report.kind(), BugKind::Crash);
        let goal = extract_goal(&p, &report).unwrap();
        assert_eq!(goal, GoalSpec::Crash { loc: dump.faulting_loc.unwrap() });
    }

    #[test]
    fn deadlock_goal_lists_blocked_lock_locations() {
        let mut pb = ProgramBuilder::new("selflock");
        let m = pb.global("m", 1);
        pb.function("main", 0, |f| {
            let mp = f.addr_global(m);
            f.lock(mp);
            f.lock(mp);
            f.unlock(mp);
            f.unlock(mp);
            f.ret_void();
        });
        let p = pb.finish("main");
        let mut i = Interpreter::new(&p, Box::new(ZeroInputs));
        let r = i.run(&InterpreterConfig {
            scheduler: SchedulerKind::RoundRobin { quantum: 8 },
            ..Default::default()
        });
        let dump = r.outcome.coredump().unwrap().clone();
        let report = BugReport::from_coredump(dump);
        assert_eq!(report.kind(), BugKind::Deadlock);
        match extract_goal(&p, &report).unwrap() {
            GoalSpec::Deadlock { thread_locs } => assert_eq!(thread_locs.len(), 1),
            other => panic!("expected deadlock goal, got {other:?}"),
        }
    }

    #[test]
    fn explicit_hint_overrides_inference() {
        let (p, dump) = crash_dump();
        let report = BugReport::new(dump, BugKind::Race);
        assert_eq!(report.kind(), BugKind::Race);
        assert!(matches!(extract_goal(&p, &report).unwrap(), GoalSpec::Crash { .. }));
    }

    #[test]
    fn missing_fault_location_is_an_error() {
        let (p, mut dump) = crash_dump();
        dump.faulting_loc = None;
        dump.faulting_thread = None;
        let report = BugReport::new(dump, BugKind::Crash);
        assert_eq!(extract_goal(&p, &report), Err(GoalExtractionError::MissingFaultLocation));
    }
}
