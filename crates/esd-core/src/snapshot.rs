//! Versioned, checksummed snapshot envelopes — the on-disk half of durable
//! sessions.
//!
//! A snapshot file is a small JSON envelope around an opaque JSON payload:
//!
//! ```json
//! { "format_version": 1, "checksum": 1234567890, "payload": "{...}" }
//! ```
//!
//! The payload is stored as a *string* so the checksum covers its exact
//! bytes: [`seal`] computes an FNV-1a 64 hash of the payload text and
//! [`unseal`] refuses to hand the payload back unless the stored hash
//! matches and the format version is known. Every failure mode is a typed
//! [`SnapshotError`] — a corrupt or future-format snapshot is a reported
//! condition, never a panic.
//!
//! The envelope is deliberately format-agnostic: [`save_snapshot`] /
//! [`load_snapshot`] seal any serde-serializable value, and the same
//! envelope wraps the [`ExecutorSnapshot`](crate::executor::ExecutorSnapshot)
//! written by a durable [`JobExecutor`](crate::executor::JobExecutor) and
//! the golden [`SessionSnapshot`](crate::session::SessionSnapshot) fixture.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// The current snapshot envelope format version. Bump when the envelope (or
/// the canonical payload encoding) changes shape; [`unseal`] rejects any
/// other version with [`SnapshotError::UnknownVersion`].
pub const SNAPSHOT_FORMAT_VERSION: u32 = 4;

/// 64-bit FNV-1a over `bytes` — the dependency-free checksum used by both
/// snapshot envelopes and journal frames.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Why a snapshot could not be written or read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(String),
    /// The envelope is not valid JSON of the expected shape.
    Malformed(String),
    /// The envelope's format version is not one this build understands.
    UnknownVersion(u32),
    /// The payload bytes do not hash to the stored checksum.
    ChecksumMismatch {
        /// The checksum stored in the envelope.
        stored: u64,
        /// The checksum of the payload actually present.
        actual: u64,
    },
    /// The payload passed the checksum but failed to decode into the
    /// requested type.
    Decode(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Malformed(e) => write!(f, "malformed snapshot envelope: {e}"),
            SnapshotError::UnknownVersion(v) => {
                write!(
                    f,
                    "unknown snapshot format version {v} (this build reads \
                     version {SNAPSHOT_FORMAT_VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch { stored, actual } => {
                write!(f, "snapshot checksum mismatch: stored {stored:#x}, actual {actual:#x}")
            }
            SnapshotError::Decode(e) => write!(f, "snapshot payload decode error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The envelope as it appears on disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Envelope {
    format_version: u32,
    checksum: u64,
    payload: String,
}

/// Wraps `payload` in a versioned, checksummed envelope (the inverse of
/// [`unseal`]).
pub fn seal(payload: &str) -> String {
    let envelope = Envelope {
        format_version: SNAPSHOT_FORMAT_VERSION,
        checksum: fnv1a64(payload.as_bytes()),
        payload: payload.to_string(),
    };
    serde_json::to_string(&envelope).expect("snapshot envelope serializes")
}

/// Verifies an envelope produced by [`seal`] and returns its payload.
pub fn unseal(text: &str) -> Result<String, SnapshotError> {
    let envelope: Envelope =
        serde_json::from_str(text).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
    if envelope.format_version != SNAPSHOT_FORMAT_VERSION {
        return Err(SnapshotError::UnknownVersion(envelope.format_version));
    }
    let actual = fnv1a64(envelope.payload.as_bytes());
    if actual != envelope.checksum {
        return Err(SnapshotError::ChecksumMismatch { stored: envelope.checksum, actual });
    }
    Ok(envelope.payload)
}

/// Serializes `value`, seals it, and writes it to `path` atomically (a
/// temporary sibling file renamed into place, so a crash mid-write never
/// leaves a half-written snapshot under the final name).
pub fn save_snapshot<T: Serialize>(path: &Path, value: &T) -> Result<(), SnapshotError> {
    let payload = serde_json::to_string(value).map_err(|e| SnapshotError::Decode(e.to_string()))?;
    let sealed = seal(&payload);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, sealed).map_err(|e| SnapshotError::Io(e.to_string()))?;
    std::fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(e.to_string()))
}

/// Reads, verifies and decodes a snapshot written by [`save_snapshot`].
pub fn load_snapshot<T: Deserialize>(path: &Path) -> Result<T, SnapshotError> {
    let text = std::fs::read_to_string(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
    let payload = unseal(&text)?;
    serde_json::from_str(&payload).map_err(|e| SnapshotError::Decode(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn seal_unseal_round_trips() {
        let payload = r#"{"hello":"world"}"#;
        assert_eq!(unseal(&seal(payload)).unwrap(), payload);
    }

    #[test]
    fn unseal_rejects_unknown_versions_and_corruption() {
        let future = r#"{"format_version": 999, "checksum": 0, "payload": ""}"#;
        assert_eq!(unseal(future), Err(SnapshotError::UnknownVersion(999)));
        let corrupt = seal("hello-data").replace("hello-data", "hello-dataX");
        assert!(matches!(unseal(&corrupt), Err(SnapshotError::ChecksumMismatch { .. })));
        assert!(matches!(unseal("not json"), Err(SnapshotError::Malformed(_))));
    }
}
