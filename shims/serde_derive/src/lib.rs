//! Derive macros for the vendored `serde` stand-in.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are not
//! available; instead the item definition is parsed directly off the
//! `proc_macro` token stream and the generated impls are assembled as source
//! text. Supported shapes cover everything this workspace derives on:
//!
//! * unit / newtype / tuple / named-field structs,
//! * enums with unit, tuple and struct variants,
//! * generic parameters with inline trait bounds (re-emitted verbatim, plus
//!   `Serialize`/`Deserialize` bounds added in a `where` clause).
//!
//! `#[serde(...)]` attributes are not supported (none exist in this
//! workspace) and are rejected loudly rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The derive half of `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// The derive half of `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Copy, Clone, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&item),
                Mode::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    /// Generic parameter list as written, without the angle brackets
    /// (e.g. `T: Eq + Hash + Copy, M: Eq + Hash + Copy`); empty if none.
    generics_decl: String,
    /// Just the parameter names (e.g. `T, M`); empty if none.
    generics_use: String,
    body: Body,
}

enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

impl Item {
    /// `<T: Eq + Hash, M: ...>` or empty.
    fn decl(&self) -> String {
        if self.generics_decl.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics_decl)
        }
    }

    /// `<T, M>` or empty.
    fn args(&self) -> String {
        if self.generics_use.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics_use)
        }
    }

    /// `where T: Bound, M: Bound` or empty.
    fn bounds(&self, bound: &str) -> String {
        if self.generics_use.is_empty() {
            return String::new();
        }
        let clauses: Vec<String> =
            self.generics_use.split(',').map(|p| format!("{}: {bound}", p.trim())).collect();
        format!("where {}", clauses.join(", "))
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i)?;
    skip_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            i += 1;
            tokens[i - 1].to_string()
        }
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected item name, found {other:?}")),
    };

    let (generics_decl, generics_use) = parse_generics(&tokens, &mut i)?;

    // Skip a `where` clause if present (none in this workspace, but cheap to
    // tolerate): everything up to the body group / semicolon.
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                _ => i += 1,
            }
        }
    }

    let body = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            other => return Err(format!("unexpected struct body: {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        }
    };

    Ok(Item { name, generics_decl, generics_use, body })
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let text = g.stream().to_string();
            if text.starts_with("serde") {
                return Err(format!("#[serde(...)] attributes are not supported: {text}"));
            }
            *i += 2;
        } else {
            return Err("malformed attribute".into());
        }
    }
    Ok(())
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Parses `<...>` after the item name. Returns (decl-with-bounds, names).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Result<(String, String), String> {
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Ok((String::new(), String::new()));
    }
    *i += 1;
    let mut depth = 1usize;
    let mut inner: Vec<TokenTree> = Vec::new();
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                inner.push(tokens[*i].clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    break;
                }
                inner.push(tokens[*i].clone());
            }
            t => inner.push(t.clone()),
        }
        *i += 1;
    }
    if depth != 0 {
        return Err("unbalanced generics".into());
    }

    // Split the inner tokens on top-level commas; the first identifier of
    // each chunk (skipping lifetimes and `const`) is the parameter name.
    let mut names: Vec<String> = Vec::new();
    let mut chunk_start = true;
    let mut chunk_depth = 0usize;
    let mut j = 0;
    while j < inner.len() {
        match &inner[j] {
            TokenTree::Punct(p) if p.as_char() == '<' => chunk_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                chunk_depth = chunk_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && chunk_depth == 0 => chunk_start = true,
            TokenTree::Punct(p) if p.as_char() == '\'' && chunk_start => {
                return Err("lifetime parameters are not supported by the serde stand-in".into());
            }
            TokenTree::Ident(id) if chunk_start => {
                let s = id.to_string();
                if s == "const" {
                    return Err("const generics are not supported by the serde stand-in".into());
                }
                names.push(s);
                chunk_start = false;
            }
            _ => {}
        }
        j += 1;
    }

    let decl = render_tokens(&inner);
    Ok((decl, names.join(", ")))
}

/// Renders tokens back to source text with spaces (good enough to re-parse).
fn render_tokens(tokens: &[TokenTree]) -> String {
    let stream: TokenStream = tokens.iter().cloned().collect();
    stream.to_string()
}

/// Parses `a: T, pub b: U, ...` and returns the field names in order.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        names.push(name);
        skip_to_top_level_comma(&tokens, &mut i);
    }
    Ok(names)
}

/// Counts top-level comma-separated entries (tuple-struct / tuple-variant
/// fields). Trailing commas do not create an extra entry.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut i = 0;
    loop {
        skip_to_top_level_comma(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
    }
    // A trailing comma leaves an empty final entry; detect it by checking the
    // last token.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

/// Advances past type tokens up to (and past) the next comma that is not
/// inside angle brackets. `->` is treated as a single arrow (its `>` does not
/// close a bracket).
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0usize;
    let mut prev_dash = false;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    depth += 1;
                } else if c == '>' && !prev_dash {
                    depth = depth.saturating_sub(1);
                } else if c == ',' && depth == 0 {
                    *i += 1;
                    return;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        skip_to_top_level_comma(&tokens, &mut i);
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Named(fields) => ser_named_fields(fields, "self."),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let pats: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                                .collect();
                            format!(
                                "{name}::{vname}({pats}) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Array(vec![{vals}]))]),",
                                pats = pats.join(", "),
                                vals = vals.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let pats = fields.join(", ");
                            let inner = ser_named_fields(fields, "");
                            format!(
                                "{name}::{vname} {{ {pats} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), {inner})]),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl {decl} ::serde::Serialize for {name}{args} {bounds} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        decl = item.decl(),
        args = item.args(),
        bounds = item.bounds("::serde::Serialize"),
    )
}

/// `Value::Object(vec![("f", to_value(&{prefix}f)), ...])`; with an empty
/// prefix the field name itself must be an in-scope binding.
fn ser_named_fields(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            let access = if prefix.is_empty() { f.clone() } else { format!("&{prefix}{f}") };
            format!("({f:?}.to_string(), ::serde::Serialize::to_value({access}))")
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => format!(
            "match __v {{ ::serde::Value::Null => Ok({name}), __other => Err(::serde::DeError::expected(\"null\", __other)) }}"
        ),
        Body::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            format!(
                "match __v.as_array() {{\n\
                     Some(__items) if __items.len() == {n} => Ok({name}({items})),\n\
                     _ => Err(::serde::DeError::expected(\"array of length {n}\", __v)),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Body::Named(fields) => de_named_fields(name, fields, "__v"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("{vn:?} => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                                .collect();
                            Some(format!(
                                "{vname:?} => match __inner.as_array() {{\n\
                                     Some(__items) if __items.len() == {n} => Ok({name}::{vname}({items})),\n\
                                     _ => Err(::serde::DeError::expected(\"array of length {n}\", __inner)),\n\
                                 }},",
                                items = items.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => Some(format!(
                            "{vname:?} => {body},",
                            body = de_named_fields(&format!("{name}::{vname}"), fields, "__inner")
                        )),
                    }
                })
                .collect();
            let str_arm = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {arms}\n\
                         __other => Err(::serde::DeError(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},",
                    arms = unit_arms.join("\n")
                )
            };
            let obj_arm = if data_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {arms}\n\
                             __other => Err(::serde::DeError(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }},",
                    arms = data_arms.join("\n")
                )
            };
            format!(
                "match __v {{\n\
                     {str_arm}\n\
                     {obj_arm}\n\
                     __other => Err(::serde::DeError::expected(\"{name} variant\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl {decl} ::serde::Deserialize for {name}{args} {bounds} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}",
        decl = item.decl(),
        args = item.args(),
        bounds = item.bounds("::serde::Deserialize"),
    )
}

/// `Ok(Ctor { f: from_value(src.get("f")...)?, ... })` over an object `src`.
fn de_named_fields(ctor: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({src}.get({f:?}).ok_or_else(|| ::serde::DeError(format!(\"missing field `{f}`\")))?)?"
            )
        })
        .collect();
    format!(
        "if {src}.as_object().is_none() {{\n\
             Err(::serde::DeError::expected(\"object\", {src}))\n\
         }} else {{\n\
             Ok({ctor} {{ {inits} }})\n\
         }}",
        inits = inits.join(", ")
    )
}
