//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro over `#[test] fn name(arg in strategy, ...)`
//!   items,
//! * integer range strategies (`0i64..100`, `1u8..=4`),
//! * tuples of strategies,
//! * [`collection::vec`] for variable-length vectors,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! There is no shrinking: a failing case panics immediately with the standard
//! assertion message, which is enough for CI. Each test runs a fixed number
//! of deterministic cases (seeded per case index), so failures reproduce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Number of generated cases per property (mirrors proptest's default order
/// of magnitude while staying fast for `cargo test -q`).
pub const CASES: u64 = 192;

/// Deterministic per-case RNG handed to strategies by the [`proptest!`]
/// expansion.
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for case number `case` (deterministic; independent across cases).
    pub fn for_case(case: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(0xe5d_0000 + case))
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        loop {
            if let Some(c) = char::from_u32(rng.0.gen_range(lo..hi)) {
                return c;
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.0.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` item becomes
/// a `#[test]` that runs the body over [`CASES`](crate::CASES) generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..$crate::CASES {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn ranges_and_vecs(xs in crate::collection::vec((0u32..4, 0i64..100), 1..6), y in 1u8..=3) {
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            for (a, b) in &xs {
                prop_assert!(*a < 4);
                prop_assert!((0..100).contains(b));
            }
            prop_assert!((1..=3).contains(&y));
        }
    }
}
