//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and parses JSON
//! text back into it. Exposes the exact call surface the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`] and [`Error`].

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by serialization or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Keep integral floats distinguishable as numbers and round-trippable.
        if x == x.trunc() && x.abs() < 1e15 {
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&x.to_string());
        }
    } else {
        // JSON has no NaN/Infinity; real serde_json errors here, we emit null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-42").unwrap(), Value::I64(-42));
        assert_eq!(parse("18446744073709551615").unwrap(), Value::U64(u64::MAX));
        assert_eq!(parse("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn roundtrip_nested() {
        let text = "{\"a\": [1, {\"b\": null}], \"c\": \"x\"}";
        let v = parse(text).unwrap();
        let compact = {
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            out
        };
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = {
            let mut out = String::new();
            write_value(&mut out, &v, Some(2), 0);
            out
        };
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
    }
}
