//! Offline stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal replacement exposing the subset of the serde
//! surface the ESD crates use: the [`Serialize`] / [`Deserialize`] traits and
//! the same-named derive macros (re-exported from `serde_derive`).
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` visitor
//! machinery: serialization goes through a single self-describing tree,
//! [`Value`], which `serde_json` renders to and parses from JSON text. The
//! derived impls follow serde's externally-tagged conventions (newtype
//! structs are transparent, unit variants are strings, data variants are
//! single-key objects) so the produced JSON looks like what real serde_json
//! would emit. The one deliberate difference: maps serialize as arrays of
//! `[key, value]` pairs, which lets non-string keys round-trip — something
//! real serde_json rejects at runtime.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// Self-describing serialization tree (the analog of `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered, duplicate keys never produced.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object entries, if `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if `self` is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short name for the value's shape, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error for an unexpected value shape.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to the serialization tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the serialization tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match u64::try_from(*self) {
                    Ok(n) if n <= i64::MAX as u64 => Value::I64(n as i64),
                    Ok(n) => Value::U64(n),
                    Err(_) => unreachable!("unsigned fits u64"),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.as_secs().to_value(), self.subsec_nanos().to_value()])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let (secs, nanos) = <(u64, u32)>::from_value(v)?;
        Ok(Duration::new(secs, nanos))
    }
}

// ---------------------------------------------------------------------------
// Smart pointers and references
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Rc::new)
    }
}

// ---------------------------------------------------------------------------
// Option / containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Orders two serialized values so map output is deterministic regardless of
/// `HashMap` iteration order.
fn value_sort_key(v: &Value) -> String {
    crate::to_compact_string(v)
}

/// Sorts serialized values into the canonical order this crate uses for
/// unordered containers (by compact-rendered text). Public so manual
/// `Serialize` impls over hash-ordered containers in other crates can emit
/// the same deterministic output as the built-in map/set impls.
pub fn sort_values(items: &mut [Value]) {
    items.sort_by_key(value_sort_key);
}

/// Renders a `Value` compactly; used only for deterministic map ordering.
fn to_compact_string(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        Value::F64(x) => x.to_string(),
        Value::Str(s) => format!("{s:?}"),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(to_compact_string).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Object(entries) => {
            let inner: Vec<String> =
                entries.iter().map(|(k, v)| format!("{k:?}:{}", to_compact_string(v))).collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

fn serialize_map<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<Value> =
        entries.map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect();
    pairs.sort_by_key(value_sort_key);
    Value::Array(pairs)
}

fn deserialize_pairs<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    let items = v.as_array().ok_or_else(|| DeError::expected("array of [key, value] pairs", v))?;
    items
        .iter()
        .map(|pair| match pair.as_array() {
            Some([k, v]) => Ok((K::from_value(k)?, V::from_value(v)?)),
            _ => Err(DeError::expected("[key, value] pair", pair)),
        })
        .collect()
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        deserialize_pairs(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        deserialize_pairs(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by_key(value_sort_key);
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match v.as_array() {
                    Some(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError(format!(
                        "expected array of length {LEN}, found {}",
                        other.map(|a| a.len().to_string()).unwrap_or_else(|| v.kind().into())
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
