//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the rand API this workspace uses —
//! `StdRng::seed_from_u64`, `Rng::gen_range` over half-open and inclusive
//! integer ranges, and `Rng::gen_bool` — on top of a small xorshift-style
//! generator (splitmix64 seeding feeding xoshiro256**). Determinism per seed
//! is guaranteed; the exact stream differs from the real crate, which is fine
//! because all in-repo consumers only need reproducibility, not
//! compatibility.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on an empty range, like real rand.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256** seeded via
    /// splitmix64 — not the same stream as real rand's StdRng, but the same
    /// API and per-seed determinism).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The generator's full internal state, for exact capture in
        /// snapshots: [`StdRng::from_state`] rebuilds a generator that
        /// continues the identical stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured
        /// [`state`](StdRng::state); the restored generator produces exactly
        /// the words the captured one would have produced next.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(10..=12u32);
            assert!((10..=12).contains(&y));
            let z = rng.gen_range(0..3usize);
            assert!(z < 3);
        }
    }

    #[test]
    fn state_capture_resumes_the_exact_stream() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            rng.gen_range(0..1_000_000u64);
        }
        let mut resumed = StdRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.gen_range(0..1_000_000u64), resumed.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
