//! ESD — execution synthesis for automated software debugging, in Rust.
//!
//! This is the umbrella crate of the workspace: it re-exports the public API
//! of every component so that downstream users (and the examples under
//! `examples/`) can depend on a single crate.
//!
//! * [`ir`] — the program representation and concrete interpreter.
//! * [`analysis`] — CFG, call graph, critical edges, intermediate goals,
//!   proximity distances (the static phase).
//! * [`symex`] — the multi-threaded symbolic-execution engine and search
//!   strategies (the dynamic phase).
//! * [`concurrency`] — deadlock / data-race detection and schedules.
//! * [`core`] — the `esdsynth` facade, bug reports, execution files,
//!   baselines and triage.
//! * [`playback`] — the `esdplay` facade: deterministic replay, the debugger
//!   façade and patch verification.
//! * [`workloads`] — the evaluation workloads (real-bug analogs and BPF).

pub use esd_analysis as analysis;
pub use esd_concurrency as concurrency;
pub use esd_core as core;
pub use esd_ir as ir;
pub use esd_playback as playback;
pub use esd_symex as symex;
pub use esd_workloads as workloads;

pub use esd_core::{BugKind, BugReport, Esd, EsdOptions, SynthesizedExecution};
pub use esd_playback::{play, Debugger};
pub use esd_symex::GoalSpec;
