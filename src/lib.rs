//! ESD — execution synthesis for automated software debugging, in Rust.
//!
//! This is the umbrella crate of the workspace: it re-exports the public API
//! of every component so that downstream users (and the examples under
//! `examples/`) can depend on a single crate. The crate graph, the synthesis
//! pipeline and the extension points are documented in `ARCHITECTURE.md` at
//! the repository root.
//!
//! * [`ir`] — the program representation and concrete interpreter.
//! * [`analysis`] — CFG, call graph, critical edges, intermediate goals,
//!   proximity distances (the static phase).
//! * [`symex`] — the multi-threaded symbolic-execution engine with pluggable
//!   search frontiers (the dynamic phase).
//! * [`concurrency`] — deadlock / data-race detection and schedules.
//! * [`core`] — the `esdsynth` facade, bug reports, execution files,
//!   sessions, the multi-job [`JobExecutor`], baselines and triage.
//! * [`service`] — the debugging-as-a-service front door: the [`Service`]
//!   trait, the in-process backend, and the framed wire protocol with its
//!   daemon and client.
//! * [`playback`] — the `esdplay` facade: deterministic replay, the debugger
//!   façade and patch verification.
//! * [`workloads`] — the evaluation workloads (real-bug analogs and BPF).
//!
//! # Example — from a bug report to a replayed failure
//!
//! The core flow of `examples/quickstart.rs`, on the paper's Listing-1
//! deadlock (two threads that deadlock only under specific inputs *and* an
//! adverse schedule):
//!
//! ```
//! use esd::EsdOptions;
//! use esd::playback::play;
//! use esd::workloads::listing1;
//!
//! let workload = listing1();
//!
//! // Synthesize an execution that reaches the reported deadlock: concrete
//! // values for every program input plus a serialized thread schedule.
//! let esd = EsdOptions::builder().max_steps(400_000).synthesizer();
//! let report = esd
//!     .synthesize_goal(&workload.program, workload.goal(), false)
//!     .expect("ESD synthesizes the Listing-1 deadlock");
//! assert!(!report.execution.inputs.is_empty());
//! assert!(report.execution.schedule.context_switches() >= 2);
//!
//! // Play it back deterministically: the same failure, every time.
//! let replay = play(&workload.program, &report.execution);
//! assert!(replay.reproduced);
//! ```
//!
//! # Example — a stepwise session with cancellation
//!
//! The same job as a resumable [`SynthesisSession`]: the caller advances the
//! search in slices, may observe progress between them, and can stop at any
//! point keeping the partial statistics. A [`Portfolio`] builds on sessions
//! to race several search frontiers over one job round-robin.
//!
//! ```
//! use esd::{EsdOptions, SessionStatus};
//! use esd::workloads::listing1;
//!
//! let workload = listing1();
//! let mut session = EsdOptions::builder()
//!     .max_steps(400_000)
//!     .session(&workload.program, workload.goal());
//!
//! // Advance the search 1000 rounds at a time.
//! while session.poll().is_running() {
//!     session.run_for(1000);
//! }
//! assert!(matches!(session.poll(), SessionStatus::Found(_)));
//! ```

pub use esd_analysis as analysis;
pub use esd_concurrency as concurrency;
pub use esd_core as core;
pub use esd_ir as ir;
pub use esd_playback as playback;
pub use esd_service as service;
pub use esd_symex as symex;
pub use esd_workloads as workloads;

/// The synthesis pipeline (re-exported from [`esd_core`]), home of [`Esd`]
/// and [`EsdOptions`].
pub use esd_core::synth;

/// Stepwise synthesis sessions (re-exported from [`esd_core`]), home of
/// [`SynthesisSession`] and the progress [`Observer`].
pub use esd_core::session;

/// The frontier portfolio runner (re-exported from [`esd_core`]), home of
/// [`Portfolio`].
pub use esd_core::portfolio;

/// The multi-job executor service (re-exported from [`esd_core`]), home of
/// [`JobExecutor`] and the [`FairnessPolicy`] implementations.
pub use esd_core::executor;

pub use esd_core::{
    BugKind, BugReport, Esd, EsdOptions, EsdOptionsBuilder, ExecutorSnapshot, ExecutorStats,
    FairnessPolicy, JobExecutor, JobHandle, JobOutcome, JobPhase, JobProgress, JobSpec, JobStatus,
    JobVerdict, JournalDamage, Observer, Portfolio, PortfolioResult, ProgressEvent, Recovery,
    RecoveryError, SessionSnapshot, SessionStatus, SnapshotError, SynthesisError, SynthesisSession,
    SynthesizedExecution,
};
pub use esd_playback::{play, Debugger};
pub use esd_service::{
    Daemon, InProcessService, JobRequest, JobTicket, ProgressUpdate, RemoteClient, Service,
    ServiceError, Subscription,
};
pub use esd_symex::{FrontierKind, GoalSpec, SearchConfig, StepOutcome};

use std::fmt;

/// The one error surface of the front door: every layer's typed failure —
/// synthesis, durable snapshots, journal damage, the service itself —
/// wrapped in a single [`std::error::Error`] so clients match on one enum
/// instead of four.
///
/// Each component error converts in via `From`, so `?` lifts any of them
/// into `Result<_, EsdError>`:
///
/// ```
/// use esd::{EsdError, InProcessService, JobExecutor, JobRequest, Service};
/// use esd::workloads::listing1;
///
/// fn submit_one() -> Result<(), EsdError> {
///     let w = listing1();
///     let mut service = InProcessService::new(JobExecutor::round_robin());
///     let ticket = service.submit(JobRequest::new("job", &w.program, w.goal()))?;
///     let _status = service.poll(ticket)?;
///     Ok(())
/// }
/// submit_one().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EsdError {
    /// A synthesis attempt failed (see [`esd_core::SynthesisError`]).
    Synthesis(SynthesisError),
    /// A snapshot could not be written or read (see
    /// [`esd_core::SnapshotError`]).
    Snapshot(SnapshotError),
    /// A durable journal was torn or corrupted (see
    /// [`esd_core::JournalDamage`]).
    Journal(JournalDamage),
    /// Crash recovery could not replay the journal onto the snapshot (see
    /// [`esd_core::RecoveryError`]).
    Recovery(RecoveryError),
    /// A service call failed (see [`esd_service::ServiceError`]).
    Service(ServiceError),
}

impl fmt::Display for EsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EsdError::Synthesis(e) => write!(f, "synthesis: {e}"),
            EsdError::Snapshot(e) => write!(f, "snapshot: {e}"),
            EsdError::Journal(e) => write!(f, "journal: {e}"),
            EsdError::Recovery(e) => write!(f, "recovery: {e}"),
            EsdError::Service(e) => write!(f, "service: {e}"),
        }
    }
}

impl std::error::Error for EsdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EsdError::Synthesis(e) => Some(e),
            EsdError::Snapshot(e) => Some(e),
            EsdError::Journal(e) => Some(e),
            EsdError::Recovery(e) => Some(e),
            EsdError::Service(e) => Some(e),
        }
    }
}

impl From<SynthesisError> for EsdError {
    fn from(e: SynthesisError) -> Self {
        EsdError::Synthesis(e)
    }
}

impl From<SnapshotError> for EsdError {
    fn from(e: SnapshotError) -> Self {
        EsdError::Snapshot(e)
    }
}

impl From<JournalDamage> for EsdError {
    fn from(e: JournalDamage) -> Self {
        EsdError::Journal(e)
    }
}

impl From<RecoveryError> for EsdError {
    fn from(e: RecoveryError) -> Self {
        EsdError::Recovery(e)
    }
}

impl From<ServiceError> for EsdError {
    fn from(e: ServiceError) -> Self {
        EsdError::Service(e)
    }
}
