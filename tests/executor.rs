//! Integration tests for the multi-job executor: interleaving jobs must
//! never change what any job synthesizes (byte-identical execution files,
//! solo vs. interleaved, at every engine thread count), the fairness
//! policies must schedule as documented (no starvation under round-robin,
//! urgent jobs first under deadline-first), and a winning member must cancel
//! its pending siblings immediately.

use esd::core::MemberOutcome;
use esd::playback::play;
use esd::workloads::real_bugs::{ghttpd_log_overflow, paste_invalid_free, sqlite_recursive_lock};
use esd::workloads::{all_real_bugs, generate_bpf, BpfConfig, Workload};
use esd::{Esd, EsdOptions, FrontierKind, JobExecutor, JobSpec, JobStatus, JobVerdict};

/// The engine thread count under test: the CI determinism matrix sets
/// `ESD_THREADS` to 1, 2 and 8; locally the default exercises 4 workers.
fn env_threads() -> usize {
    std::env::var("ESD_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(4)
}

/// The executor pool size under test: the CI determinism matrix sets
/// `ESD_POOL` to 1, 2 and 8; locally the default exercises 2 workers.
fn env_pool() -> usize {
    std::env::var("ESD_POOL").ok().and_then(|s| s.parse().ok()).unwrap_or(2)
}

fn mkfifo() -> Workload {
    all_real_bugs().into_iter().find(|w| w.name == "mkfifo").expect("mkfifo workload exists")
}

/// Per-workload options for the interleaving test: the paste job runs the
/// beam frontier so the executor drives the multi-threaded engine path; the
/// rest use the paper's proximity default.
fn batch_options(name: &str, threads: usize) -> EsdOptions {
    let base = EsdOptions::builder().max_steps(8_000_000).threads(threads);
    if name == "paste" {
        base.frontier(FrontierKind::Beam { width: 16 }).build()
    } else {
        base.build()
    }
}

/// The tentpole determinism contract: a job's execution file is
/// byte-identical whether the job ran solo or interleaved with three other
/// jobs, because slicing happens only at `step_round` boundaries and jobs
/// share nothing. Exercised at `threads = 1` and at the CI matrix thread
/// count (`ESD_THREADS`) in the same run, and — since the executor went
/// parallel across jobs — with slice batches spread over an OS thread pool
/// of 1 and of the CI matrix size (`ESD_POOL`).
#[test]
fn interleaved_jobs_emit_byte_identical_execution_files() {
    let workloads =
        [paste_invalid_free(), sqlite_recursive_lock(), ghttpd_log_overflow(), mkfifo()];

    // Solo baselines, single-threaded (the engine's own determinism tests
    // pin that the thread count is unobservable).
    let solo: Vec<String> = workloads
        .iter()
        .map(|w| {
            Esd::new(batch_options(&w.name, 1))
                .synthesize_goal(&w.program, w.goal(), false)
                .unwrap_or_else(|e| panic!("{} solo synthesis: {e:?}", w.name))
                .execution
                .to_json()
        })
        .collect();

    // (engine threads, executor batch width, executor pool size): the
    // classic serial legs, then full-width batches executed on pools of 1
    // and of the matrix size — all four must reproduce the solo baselines.
    let legs = [
        (1, 1, 1),
        (env_threads(), 1, 1),
        (1, workloads.len(), 1),
        (1, workloads.len(), env_pool()),
    ];
    for (threads, width, pool) in legs {
        let mut executor =
            JobExecutor::round_robin().slice_rounds(256).batch_width(width).pool_size(pool);
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                executor.submit(
                    JobSpec::new(&w.name, &w.program, w.goal())
                        .options(batch_options(&w.name, threads)),
                )
            })
            .collect();
        executor.run_until_idle();

        for ((w, handle), solo_json) in workloads.iter().zip(&handles).zip(&solo) {
            let outcome = executor.take(*handle).expect("idle executor finished every job");
            assert_eq!(
                outcome.verdict,
                JobVerdict::Found,
                "{} (threads={threads} width={width} pool={pool})",
                w.name
            );
            let report = outcome.report().expect("Found jobs carry a report");
            assert_eq!(
                report.execution.to_json(),
                *solo_json,
                "{}: interleaved with 3 other jobs at threads={threads} width={width} \
                 pool={pool} must emit the byte-identical execution file of a solo run",
                w.name
            );
            assert!(
                play(&w.program, &report.execution).reproduced,
                "{}: the interleaved job's execution must replay",
                w.name
            );
        }
    }
}

/// A long-running job: a 512-branch BPF program searched breadth-first
/// (undirected, so the path space is effectively inexhaustible within any
/// budget the test dispatches).
fn expensive_job(label: &str) -> JobSpec {
    let w = generate_bpf(&BpfConfig { branches: 512, ..Default::default() });
    JobSpec::new(label, &w.program, w.goal())
        .options(EsdOptions::builder().max_steps(u64::MAX / 2).frontier(FrontierKind::Bfs).build())
}

/// Round-robin starvation freedom: a cheap job submitted *after* an
/// expensive one still finishes in a bounded number of slices, while the
/// expensive job keeps running.
#[test]
fn round_robin_never_starves_the_cheap_job() {
    let cheap = mkfifo();
    let mut executor = JobExecutor::round_robin().slice_rounds(512);
    let big = executor.submit(expensive_job("expensive"));
    let small = executor.submit(
        JobSpec::new("cheap", &cheap.program, cheap.goal())
            .options(EsdOptions::builder().max_steps(8_000_000).build()),
    );

    let mut slices = 0u64;
    while !executor.status(small).is_terminal() {
        assert!(executor.run_slice(), "work remains while the cheap job is unfinished");
        slices += 1;
        assert!(slices < 100_000, "round-robin must not starve the cheap job");
    }
    assert_eq!(executor.status(small).verdict(), Some(JobVerdict::Found));
    assert!(
        matches!(executor.status(big), JobStatus::Running { .. }),
        "the expensive job must still be searching when the cheap one finishes"
    );
    // Fair turns: the cheap job never got more slices than the expensive one
    // plus the one turn it finished on.
    let stats = executor.stats();
    let small_slices = stats.jobs[small.id() as usize].slices;
    let big_slices = stats.jobs[big.id() as usize].slices;
    assert!(
        small_slices <= big_slices + 1,
        "round-robin slice counts must stay balanced (cheap {small_slices}, \
         expensive {big_slices})"
    );
    assert!(executor.cancel(big));
    assert_eq!(executor.status(big), JobStatus::Cancelled);
}

/// Deadline-first fairness: an urgent job submitted *after* a FIFO-earlier
/// long-running job finishes first — the policy serves the earliest
/// scheduling deadline exclusively, with enlarged slices.
#[test]
fn deadline_first_finishes_the_urgent_job_before_the_fifo_earlier_one() {
    let urgent = mkfifo();
    let mut executor = JobExecutor::deadline_first().slice_rounds(512);
    let big = executor.submit(expensive_job("batch"));
    let rush = executor.submit(
        JobSpec::new("urgent", &urgent.program, urgent.goal())
            .options(EsdOptions::builder().max_steps(8_000_000).build())
            .deadline(std::time::Duration::from_secs(3600)),
    );

    let mut slices = 0u64;
    while !executor.status(rush).is_terminal() {
        assert!(executor.run_slice(), "work remains while the urgent job is unfinished");
        slices += 1;
        assert!(slices < 100_000, "the urgent job must finish");
    }
    assert_eq!(executor.status(rush).verdict(), Some(JobVerdict::Found));
    assert!(
        !executor.status(big).is_terminal(),
        "the FIFO-earlier batch job must not have finished before the urgent one"
    );
    let stats = executor.stats();
    assert_eq!(
        stats.jobs[big.id() as usize].slices,
        0,
        "deadline-first serves deadline-bearing jobs exclusively"
    );
    executor.cancel(big);
}

/// Regression guard for the portfolio-loser fix: the moment a member
/// reports `Found`, the job's pending members are cancelled — members after
/// the winner in the same scheduling round receive no slice at all, so
/// per-member `rounds` statistics are exact. With a slice large enough for
/// the proximity member to win on its first turn, the trailing members must
/// report exactly zero rounds.
#[test]
fn winning_member_cancels_pending_members_before_their_slice() {
    let w = mkfifo();
    let base = EsdOptions::builder().max_steps(8_000_000);
    let mut executor = JobExecutor::round_robin().slice_rounds(4_000_000);
    let handle = executor.submit(
        JobSpec::new("race", &w.program, w.goal())
            .member("proximity", base.build())
            .member("dfs", EsdOptions::builder().frontier(FrontierKind::Dfs).build())
            .member("bfs", EsdOptions::builder().frontier(FrontierKind::Bfs).build()),
    );
    executor.run_until_idle();
    let outcome = executor.take(handle).expect("the job finished");
    assert_eq!(outcome.verdict, JobVerdict::Found);
    let members = &outcome.result.members;
    assert_eq!(members[0].outcome, MemberOutcome::Won, "proximity wins on its first slice");
    assert_eq!(outcome.slices, 1, "the job finished within one dispatched slice");
    for member in &members[1..] {
        assert_eq!(member.outcome, MemberOutcome::Preempted, "{}", member.label);
        assert_eq!(
            member.rounds, 0,
            "{}: members pending when the winner is observed must never \
             receive their slice of the winning round",
            member.label
        );
        assert_eq!(member.stats.steps, 0, "{}", member.label);
    }
}
