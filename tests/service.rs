//! End-to-end tests for the service front door: the wire must be
//! *invisible* — a job submitted over a socket synthesizes the
//! byte-identical execution file of the same spec run in-process, at any
//! executor pool size — and the backpressure contract must hold: a full
//! submit queue is a typed `Overloaded` error, never an OOM or a block.

use esd::service::{Daemon, InProcessService, JobRequest, ProgressUpdate, Service, ServiceError};
use esd::workloads::real_bugs::paste_invalid_free;
use esd::workloads::{all_real_bugs, generate_bpf, BpfConfig, Workload};
use esd::{EsdOptions, FrontierKind, JobExecutor, JobStatus, JobVerdict, RemoteClient};
use std::time::Duration;

/// The executor pool size under test (the CI matrix sets `ESD_POOL` to
/// 1, 2 and 8; the local default exercises 2 workers).
fn env_pool() -> usize {
    std::env::var("ESD_POOL").ok().and_then(|s| s.parse().ok()).unwrap_or(2)
}

fn mkfifo() -> Workload {
    all_real_bugs().into_iter().find(|w| w.name == "mkfifo").expect("mkfifo workload exists")
}

/// The two e2e workloads: `mkfifo` on the default proximity frontier and
/// `paste` on the multi-threaded beam engine (so the wire test also drives
/// engine workers under the daemon).
fn requests() -> Vec<JobRequest> {
    let mkfifo = mkfifo();
    let paste = paste_invalid_free();
    vec![
        JobRequest::new("mkfifo", &mkfifo.program, mkfifo.goal())
            .options(EsdOptions::builder().max_steps(8_000_000).build()),
        JobRequest::new("paste", &paste.program, paste.goal())
            .options(
                EsdOptions::builder()
                    .max_steps(8_000_000)
                    .frontier(FrontierKind::Beam { width: 16 })
                    .threads(2)
                    .build(),
            )
            .priority(2),
    ]
}

/// A service-backed executor with the parallel knobs turned on: full-width
/// batches over the `ESD_POOL` worker pool.
fn parallel_service() -> InProcessService {
    InProcessService::new(
        JobExecutor::round_robin().slice_rounds(4).batch_width(4).pool_size(env_pool()),
    )
}

/// Baseline: the same requests through the in-process backend on a serial
/// executor (width 1, pool 1), collected as execution-file JSON.
fn in_process_baseline() -> Vec<String> {
    let mut service = InProcessService::new(JobExecutor::round_robin().slice_rounds(4));
    let tickets: Vec<_> =
        requests().into_iter().map(|r| service.submit(r).expect("baseline submit")).collect();
    service.run_until_idle();
    tickets
        .into_iter()
        .map(|t| {
            let outcome = service.take(t).expect("poll").expect("terminal");
            assert_eq!(outcome.verdict, JobVerdict::Found, "{}", outcome.label);
            outcome.report().expect("Found carries a report").execution.to_json()
        })
        .collect()
}

/// Drives a remote client through the full lifecycle against an already
/// running daemon and returns the execution JSONs in request order.
fn run_over_wire(client: &mut RemoteClient) -> Vec<String> {
    let tickets: Vec<_> =
        requests().into_iter().map(|r| client.submit(r).expect("wire submit")).collect();
    // Stream progress for the first job on a dedicated connection while
    // polling both to completion.
    let mut subscription = client.subscribe(tickets[0]).expect("subscribe");
    let mut progress_events = 0usize;
    let mut saw_done = false;
    loop {
        for update in subscription.drain().expect("event stream stays clean") {
            match update {
                ProgressUpdate::Progress { .. } => progress_events += 1,
                ProgressUpdate::Done { status } => {
                    assert_eq!(status, JobStatus::Finished { verdict: JobVerdict::Found });
                    saw_done = true;
                }
            }
        }
        let all_done = tickets.iter().all(|t| client.poll(*t).expect("wire poll").is_terminal());
        if all_done && subscription.finished() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(saw_done, "the subscription must end with Done");
    assert!(progress_events > 0, "4-round slices must stream intermediate progress");
    tickets
        .into_iter()
        .map(|t| {
            let outcome = client.take(t).expect("wire take").expect("terminal job");
            assert_eq!(outcome.verdict, JobVerdict::Found, "{}", outcome.label);
            outcome.report().expect("report").execution.to_json()
        })
        .collect()
}

/// The tentpole e2e contract over UDS: submit → subscribe → poll → take
/// through the daemon produces byte-identical execution files to the same
/// specs run in-process on a serial executor — the wire, the batch width
/// and the pool size are all unobservable in the result.
#[test]
#[cfg(unix)]
fn uds_submission_is_byte_identical_to_in_process() {
    let baseline = in_process_baseline();
    let sock = std::env::temp_dir().join(format!("esd_svc_{}.sock", std::process::id()));
    let mut daemon = Daemon::bind_uds(&sock, parallel_service()).expect("bind uds");
    let server = std::thread::spawn(move || daemon.run().expect("daemon run"));
    let mut client = RemoteClient::connect_uds(&sock).expect("connect uds");
    let over_wire = run_over_wire(&mut client);
    assert_eq!(over_wire, baseline, "UDS submission must be byte-identical to in-process");
    client.shutdown_server().expect("shutdown");
    server.join().expect("daemon thread");
}

/// The same contract over TCP (loopback, OS-assigned port).
#[test]
fn tcp_submission_is_byte_identical_to_in_process() {
    let baseline = in_process_baseline();
    let mut daemon = Daemon::bind_tcp("127.0.0.1:0", parallel_service()).expect("bind tcp");
    let addr = daemon.local_addr().expect("tcp daemons have an address");
    let server = std::thread::spawn(move || daemon.run().expect("daemon run"));
    let mut client = RemoteClient::connect_tcp(addr.to_string()).expect("connect tcp");
    let over_wire = run_over_wire(&mut client);
    assert_eq!(over_wire, baseline, "TCP submission must be byte-identical to in-process");
    client.shutdown_server().expect("shutdown");
    server.join().expect("daemon thread");
}

/// Backpressure, in-process: the bounded submit queue rejects the
/// (max_pending + 1)-th queued job with a typed `Overloaded` carrying the
/// backlog size, and admits again once the queue drains.
#[test]
fn submit_past_the_bounded_queue_is_a_typed_overloaded() {
    let w = mkfifo();
    let mut service =
        InProcessService::new(JobExecutor::round_robin().slice_rounds(512)).max_pending(2);
    let request = || {
        JobRequest::new("queued", &w.program, w.goal())
            .options(EsdOptions::builder().max_steps(8_000_000).build())
    };
    service.submit(request()).expect("first fits the queue");
    service.submit(request()).expect("second fits the queue");
    let err = service.submit(request()).expect_err("third must be rejected");
    assert_eq!(err, ServiceError::Overloaded { retry_after_slices: 2 });
    // Drain and retry: admission control is about the queue, not a cap on
    // total jobs served.
    service.run_until_idle();
    service.submit(request()).expect("an idle service admits again");
}

/// Backpressure over the wire: the typed `Overloaded` crosses the protocol
/// unchanged — remote clients see exactly the in-process error.
#[test]
fn overloaded_crosses_the_wire_as_a_typed_error() {
    // A job the daemon cannot drain during the test: breadth-first over a
    // 256-branch BPF program needs orders of magnitude more rounds than
    // the few slices the daemon pumps between our submits, so the single
    // running slot stays occupied and the queue stays full.
    let w = generate_bpf(&BpfConfig { branches: 256, ..Default::default() });
    let service = InProcessService::new(
        // max_running(1) keeps queued jobs queued even while the daemon
        // pumps, so the rejection is deterministic.
        JobExecutor::round_robin().slice_rounds(4).max_running(1),
    )
    .max_pending(1);
    let mut daemon = Daemon::bind_tcp("127.0.0.1:0", service).expect("bind tcp");
    let addr = daemon.local_addr().expect("tcp address");
    let server = std::thread::spawn(move || daemon.run().expect("daemon run"));
    let mut client = RemoteClient::connect_tcp(addr.to_string()).expect("connect");
    let expensive = || {
        JobRequest::new("slow", &w.program, w.goal()).options(
            EsdOptions::builder().max_steps(u64::MAX / 2).frontier(FrontierKind::Bfs).build(),
        )
    };
    let first = client.submit(expensive()).expect("first admitted");
    // Burst submissions until the typed rejection appears (the daemon may
    // admit the first into the running slot between calls).
    let mut rejected = None;
    for _ in 0..4 {
        match client.submit(expensive()) {
            Ok(_) => continue,
            Err(e) => {
                rejected = Some(e);
                break;
            }
        }
    }
    match rejected {
        Some(ServiceError::Overloaded { retry_after_slices }) => {
            assert!(retry_after_slices >= 1, "the hint names the backlog")
        }
        other => panic!("expected Overloaded over the wire, got {other:?}"),
    }
    client.cancel(first).expect("cancel");
    client.shutdown_server().expect("shutdown");
    server.join().expect("daemon thread");
}

/// Unknown tickets are typed errors on both backends.
#[test]
fn unknown_tickets_are_typed_on_both_backends() {
    let mut local = InProcessService::new(JobExecutor::round_robin());
    let bogus = esd::JobTicket { id: 42 };
    assert_eq!(local.poll(bogus), Err(ServiceError::UnknownTicket { ticket: 42 }));

    let mut daemon =
        Daemon::bind_tcp("127.0.0.1:0", InProcessService::new(JobExecutor::round_robin()))
            .expect("bind tcp");
    let addr = daemon.local_addr().expect("tcp address");
    let server = std::thread::spawn(move || daemon.run().expect("daemon run"));
    let mut client = RemoteClient::connect_tcp(addr.to_string()).expect("connect");
    assert_eq!(client.poll(bogus), Err(ServiceError::UnknownTicket { ticket: 42 }));
    client.shutdown_server().expect("shutdown");
    server.join().expect("daemon thread");
}

/// The in-process subscription stream: progress events while pumping, then
/// exactly one `Done` carrying the terminal status, then silence.
#[test]
fn local_subscriptions_stream_progress_then_done() {
    let w = mkfifo();
    let mut service = InProcessService::new(JobExecutor::round_robin().slice_rounds(4));
    let ticket = service
        .submit(
            JobRequest::new("watched", &w.program, w.goal())
                .options(EsdOptions::builder().max_steps(8_000_000).build()),
        )
        .expect("submit");
    let mut subscription = service.subscribe(ticket).expect("subscribe");
    let mut progress = 0usize;
    let mut done = 0usize;
    while !subscription.finished() {
        service.pump(8);
        for update in subscription.drain().expect("local streams cannot fail") {
            match update {
                ProgressUpdate::Progress { event } => {
                    assert!(event.rounds > 0);
                    progress += 1;
                }
                ProgressUpdate::Done { status } => {
                    assert_eq!(status, JobStatus::Finished { verdict: JobVerdict::Found });
                    done += 1;
                }
            }
        }
    }
    assert!(progress > 0, "4-round slices must produce progress events");
    assert_eq!(done, 1, "exactly one terminal event");
    assert!(subscription.drain().expect("drain after Done").is_empty());
}
