//! Differential coverage tests over the generated bug corpus.
//!
//! The genbug generator (`esd-workloads`) injects exactly one bug of a known
//! kind into each seeded random program and returns its ground truth; the
//! coverage harness (`esd-bench`) runs every search frontier and executor
//! fairness policy against that truth. These tests pin the acceptance
//! criteria for the checked-in smoke corpus (4 seeds × 4 bug kinds):
//!
//! * every injected bug is found by at least one frontier within budget;
//! * every reported goal matches the injected ground truth — zero false
//!   positives;
//! * each scenario's winning configuration synthesizes a byte-identical
//!   execution file at 1, 2 and 8 engine threads, and the winner's
//!   execution replays;
//! * a generated 12-job corpus pushed through the [`JobExecutor`] yields
//!   identical per-job outcomes under every fairness policy.

use esd::playback::play;
use esd::workloads::genbug::{generate, GenConfig, GenSize, InjectedBugKind};
use esd::{EsdOptions, JobExecutor, JobSpec, JobVerdict};
use esd_bench::coverage::{corpus, coverage_matrix, smoke_seeds, CoverageConfig};

/// Per-run instruction budget: the smoke-corpus winners need well under
/// 10 k steps, so this is two orders of magnitude of headroom.
const BUDGET: u64 = 1_000_000;

fn smoke_config() -> CoverageConfig {
    CoverageConfig { seeds: smoke_seeds(), budget: BUDGET, size: GenSize::small() }
}

/// The tentpole assertion set, via the same harness CI's `coverage-smoke`
/// job gates on: full coverage, soundness against ground truth, and both
/// halves of the determinism contract (engine threads and fairness
/// policies).
#[test]
fn smoke_corpus_is_covered_soundly_and_deterministically() {
    let config = smoke_config();
    assert!(config.seeds.len() >= 4, "the smoke corpus is at least 4 seeds");
    let report = coverage_matrix(&config);
    assert_eq!(
        report.scenarios_total,
        config.seeds.len() * InjectedBugKind::ALL.len(),
        "every seed × kind pair is a scenario"
    );

    let missed: Vec<&str> =
        report.scenarios.iter().filter(|s| s.found_by == 0).map(|s| s.name.as_str()).collect();
    assert!(missed.is_empty(), "bugs missed by every frontier within {BUDGET} steps: {missed:?}");

    let false_positives: Vec<String> = report
        .false_positives()
        .iter()
        .map(|(name, cell)| {
            format!("{name} [{}]: {}", cell.frontier, cell.mismatch.as_deref().unwrap_or("?"))
        })
        .collect();
    assert!(false_positives.is_empty(), "false-positive goal reports: {false_positives:?}");

    let nondeterministic: Vec<String> = report
        .scenarios
        .iter()
        .filter(|s| !s.winner_deterministic)
        .map(|s| format!("{} (winner {})", s.name, s.winner.as_deref().unwrap_or("?")))
        .collect();
    assert!(
        nondeterministic.is_empty(),
        "winners must emit byte-identical execution files at 1, 2 and 8 \
         engine threads: {nondeterministic:?}"
    );

    let policy_disagreements: Vec<&str> =
        report.policy_jobs.iter().filter(|j| !j.agree).map(|j| j.label.as_str()).collect();
    assert!(
        policy_disagreements.is_empty(),
        "fairness policies must agree on every job outcome: {policy_disagreements:?}"
    );
}

/// Every scenario's winner not only reaches the goal — its synthesized
/// execution replays to the same failure, and the replayed fault carries a
/// tag the ground truth allows.
#[test]
fn smoke_corpus_winners_replay_to_the_injected_failure() {
    for w in corpus(&smoke_config()) {
        let esd = EsdOptions::builder()
            .max_steps(BUDGET)
            .with_race_detection(w.truth.needs_race_preemptions)
            .synthesizer();
        let report = esd
            .synthesize_goal(&w.program, w.truth.goal.clone(), w.truth.needs_race_preemptions)
            .unwrap_or_else(|e| panic!("{}: proximity synthesis failed: {e:?}", w.name));
        w.truth
            .matches(&report.execution)
            .unwrap_or_else(|e| panic!("{}: ground truth mismatch: {e}", w.name));
        let replay = play(&w.program, &report.execution);
        assert!(replay.reproduced, "{}: the synthesized execution must replay", w.name);
    }
}

/// Satellite: a generated 12-job corpus (3 seeds × 4 kinds) submitted as a
/// batch yields identical per-job outcomes under every fairness policy —
/// the order-insensitivity regression on top of the executor's
/// solo-vs-interleaved guarantee. Exercises the batch submission API
/// (`run_batch`) end to end.
#[test]
fn twelve_job_corpus_outcomes_are_policy_invariant() {
    let corpus: Vec<_> = [3u64, 5, 8]
        .iter()
        .flat_map(|&seed| {
            InjectedBugKind::ALL.iter().map(move |&kind| generate(&GenConfig::new(seed, kind)))
        })
        .collect();
    assert_eq!(corpus.len(), 12);

    let specs = || -> Vec<JobSpec> {
        corpus
            .iter()
            .map(|w| {
                JobSpec::new(&w.name, &w.program, w.truth.goal.clone()).options(
                    EsdOptions::builder()
                        .max_steps(BUDGET)
                        .with_race_detection(w.truth.needs_race_preemptions)
                        .build(),
                )
            })
            .collect()
    };

    let baseline: Vec<(JobVerdict, Option<String>)> = JobExecutor::round_robin()
        .slice_rounds(128)
        .run_batch(specs())
        .into_iter()
        .map(|o| (o.verdict, o.report().map(|r| r.execution.to_json())))
        .collect();
    for (w, (verdict, json)) in corpus.iter().zip(&baseline) {
        assert_eq!(*verdict, JobVerdict::Found, "{}", w.name);
        assert!(json.is_some(), "{}", w.name);
    }

    for executor in [JobExecutor::weighted_by_priority(), JobExecutor::deadline_first()] {
        let outcomes = executor.slice_rounds(128).run_batch(specs());
        for ((w, outcome), expected) in corpus.iter().zip(outcomes).zip(&baseline) {
            let got = (outcome.verdict, outcome.report().map(|r| r.execution.to_json()));
            assert_eq!(
                got, *expected,
                "{}: outcome must not depend on the fairness policy",
                w.name
            );
        }
    }
}
