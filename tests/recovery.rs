//! The crash-recovery test matrix: durable executors must survive a hard
//! crash at *every* slice boundary and still synthesize byte-identical
//! execution files.
//!
//! For each fairness policy, the harness first runs an uninterrupted
//! two-job batch (the `paste` invalid free on the multi-threaded `beam:16`
//! engine, plus a generated `genbug` corpus program) and records every
//! job's winner execution bytes and search statistics. It then replays the
//! same batch under a durable executor, crashing after `k` dispatched
//! slices for every crash point `k` — the executor is dropped cold, exactly
//! what a process kill leaves behind: the last checkpoint plus the journal
//! tail — recovers with [`JobExecutor::recover`], finishes the batch, and
//! asserts the outcomes are identical to the uninterrupted run.
//!
//! The checkpoint cadences differ per policy so the matrix covers both
//! pure-snapshot recovery (`checkpoint_every(1)`: the journal is empty at
//! every boundary) and genuine journal replay (cadences 3 and 4: most crash
//! points land mid-interval and recovery must re-drive journaled grants).
//!
//! `ESD_RECOVERY_REDUCED=1` subsamples the crash points (CI smoke mode);
//! the default exercises every boundary. `ESD_THREADS` sets the engine
//! thread count, as in the rest of the determinism matrix.

use esd::symex::SearchStats;
use esd::workloads::genbug::{generate, GenConfig, InjectedBugKind};
use esd::workloads::real_bugs::paste_invalid_free;
use esd::workloads::Workload;
use esd::{EsdOptions, FrontierKind, JobExecutor, JobSpec, JobVerdict};
use std::path::PathBuf;
use std::time::Duration;

/// The engine thread count under test (the CI determinism matrix sets
/// `ESD_THREADS` to 1, 2 and 8; the local default exercises 4 workers).
fn env_threads() -> usize {
    std::env::var("ESD_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(4)
}

fn reduced() -> bool {
    std::env::var("ESD_RECOVERY_REDUCED").ok().as_deref() == Some("1")
}

/// Durable state lives under the repo-root `recovery_tmp/` (gitignored;
/// uploaded as a CI artifact when the matrix fails).
/// Success-path cleanup: removes a test's durable directory and then the
/// shared `recovery_tmp/` parent if this was its last entry (the
/// non-recursive `remove_dir` fails harmlessly while other matrix tests'
/// directories are still present). Failure paths never reach this, so the
/// CI upload-on-failure artifact keeps the evidence.
fn remove_durable_dir(dir: &std::path::Path) {
    let _ = std::fs::remove_dir_all(dir);
    if let Some(parent) = dir.parent() {
        let _ = std::fs::remove_dir(parent);
    }
}

fn durable_dir(tag: &str) -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("recovery_tmp").join(tag)
}

/// The matrix jobs: the real `paste` bug on the batched multi-threaded beam
/// engine, and a generated corpus bug on the paper's proximity default.
fn matrix_jobs(threads: usize) -> Vec<(Workload, EsdOptions)> {
    let beam = EsdOptions::builder()
        .max_steps(2_000_000)
        .frontier(FrontierKind::Beam { width: 16 })
        .threads(threads)
        .build();
    let proximity = EsdOptions::builder().max_steps(2_000_000).threads(threads).build();
    vec![
        (paste_invalid_free(), beam),
        (generate(&GenConfig::new(2, InjectedBugKind::CrashOnPath)).to_workload(), proximity),
    ]
}

fn submit_jobs(executor: &mut JobExecutor, threads: usize) -> Vec<esd::JobHandle> {
    matrix_jobs(threads)
        .into_iter()
        .enumerate()
        .map(|(i, (w, options))| {
            executor.submit(
                JobSpec::new(&w.name, &w.program, w.goal())
                    .options(options)
                    // Distinct priorities and deadline hints so the
                    // weighted and deadline-first policies actually
                    // differentiate the jobs.
                    .priority(1 + i as u32)
                    .deadline(Duration::from_secs(100 * (i as u64 + 1))),
            )
        })
        .collect()
}

/// What the uninterrupted run produced for one job, minus wall-clock times.
struct Expected {
    label: String,
    verdict: JobVerdict,
    execution_json: Option<String>,
    member_stats: Vec<SearchStats>,
    member_rounds: Vec<u64>,
    rounds: u64,
}

fn collect(executor: &mut JobExecutor, handles: &[esd::JobHandle]) -> Vec<Expected> {
    handles
        .iter()
        .map(|h| {
            let outcome = executor.take(*h).expect("finished executors expose every outcome");
            Expected {
                label: outcome.label.clone(),
                verdict: outcome.verdict,
                execution_json: outcome.report().map(|r| r.execution.to_json()),
                member_stats: outcome.result.members.iter().map(|m| m.stats.clone()).collect(),
                member_rounds: outcome.result.members.iter().map(|m| m.rounds).collect(),
                rounds: outcome.rounds,
            }
        })
        .collect()
}

fn assert_matches(actual: &[Expected], expected: &[Expected], context: &str) {
    assert_eq!(actual.len(), expected.len(), "{context}: job count");
    for (a, e) in actual.iter().zip(expected) {
        assert_eq!(a.label, e.label, "{context}");
        assert_eq!(a.verdict, e.verdict, "{context}: {} verdict", e.label);
        assert_eq!(
            a.execution_json, e.execution_json,
            "{context}: {} must synthesize the byte-identical execution file",
            e.label
        );
        assert_eq!(
            a.member_stats, e.member_stats,
            "{context}: {} member search statistics must be equal",
            e.label
        );
        assert_eq!(a.member_rounds, e.member_rounds, "{context}: {} member rounds", e.label);
        assert_eq!(a.rounds, e.rounds, "{context}: {} total rounds", e.label);
    }
}

/// Which crash points to exercise: every slice boundary by default, a
/// deterministic subsample (always including the first boundaries, one per
/// checkpoint phase, and the last) in reduced mode.
fn crash_points(total: u64, cadence: u64) -> Vec<u64> {
    if !reduced() {
        return (0..=total).collect();
    }
    let mut points = vec![0, 1, 2, cadence, cadence + 1, total / 2, total.saturating_sub(1)];
    points.retain(|k| *k <= total);
    points.sort_unstable();
    points.dedup();
    points
}

/// Runs the full crash matrix for one policy. `make` builds the executor
/// (the policy under test), `cadence` its checkpoint interval.
fn run_matrix(name: &str, make: fn() -> JobExecutor, cadence: u64) {
    let threads = env_threads();
    // Small slices so the batch crosses many slice boundaries (~28 for this
    // two-job batch) — each boundary is a crash point in the matrix.
    let slice_rounds = 32;

    // The uninterrupted baseline, and the total slice count it needed.
    let mut baseline = make().slice_rounds(slice_rounds);
    let handles = submit_jobs(&mut baseline, threads);
    baseline.run_until_idle();
    let total = baseline.stats().slices_dispatched;
    let expected = collect(&mut baseline, &handles);
    assert!(
        expected.iter().all(|e| e.verdict == JobVerdict::Found),
        "{name}: both matrix jobs must be synthesizable uninterrupted"
    );

    for k in crash_points(total, cadence) {
        let tag = format!("{name}-t{threads}-crash{k}");
        let dir = durable_dir(&tag);
        let _ = std::fs::remove_dir_all(&dir);

        let mut executor = make()
            .slice_rounds(slice_rounds)
            .checkpoint_every(cadence)
            .durable_dir(&dir)
            .expect("durable directory is writable");
        let _ = submit_jobs(&mut executor, threads);
        for _ in 0..k {
            assert!(executor.run_slice(), "{tag}: work must remain before the crash point");
        }
        // The crash: the live executor vanishes; only the durable directory
        // survives.
        drop(executor);

        let mut recovered = JobExecutor::recover(&dir)
            .unwrap_or_else(|e| panic!("{tag}: recovery must succeed: {e}"));
        recovered.run_until_idle();
        // Handles survive recovery: they are dense submit-order ids, listed
        // by the recovered executor's own stats.
        let handles: Vec<esd::JobHandle> =
            recovered.stats().jobs.iter().map(|j| j.handle).collect();
        let actual = collect(&mut recovered, &handles);
        assert_matches(&actual, &expected, &tag);

        remove_durable_dir(&dir);
    }
}

#[test]
fn crash_recovery_matrix_round_robin() {
    run_matrix("round-robin", JobExecutor::round_robin, 1);
}

#[test]
fn crash_recovery_matrix_weighted_by_priority() {
    run_matrix("weighted", JobExecutor::weighted_by_priority, 3);
}

#[test]
fn crash_recovery_matrix_deadline_first() {
    run_matrix("deadline", JobExecutor::deadline_first, 4);
}

/// A journal torn mid-frame (the tail a `kill -9` can leave) must not stop
/// recovery: the valid prefix replays and the batch still finishes with the
/// byte-identical outcome.
#[test]
fn recovery_tolerates_a_torn_journal_tail() {
    let threads = env_threads();
    let dir = durable_dir(&format!("torn-t{threads}"));
    let _ = std::fs::remove_dir_all(&dir);

    // Uninterrupted baseline.
    let mut baseline = JobExecutor::round_robin().slice_rounds(32);
    let handles = submit_jobs(&mut baseline, threads);
    baseline.run_until_idle();
    let expected = collect(&mut baseline, &handles);

    // Durable run crashed mid-batch, with a wide cadence so the journal
    // holds several grants to tear.
    let mut executor = JobExecutor::round_robin()
        .slice_rounds(32)
        .checkpoint_every(1000)
        .durable_dir(&dir)
        .expect("durable directory is writable");
    let _ = submit_jobs(&mut executor, threads);
    for _ in 0..5 {
        assert!(executor.run_slice());
    }
    drop(executor);

    // Tear the final frame: chop bytes off the journal tail.
    let journal_path = dir.join("journal-1.log");
    let bytes = std::fs::read(&journal_path).expect("journal exists");
    assert!(bytes.len() > 8, "five grants must have been journaled");
    std::fs::write(&journal_path, &bytes[..bytes.len() - 7]).expect("journal truncated");

    let mut recovered = JobExecutor::recover(&dir).expect("torn journals must recover");
    recovered.run_until_idle();
    let handles: Vec<esd::JobHandle> = recovered.stats().jobs.iter().map(|j| j.handle).collect();
    let actual = collect(&mut recovered, &handles);
    assert_matches(&actual, &expected, "torn-journal");

    remove_durable_dir(&dir);
}
