//! Property-based tests over the core data structures and invariants.

use esd::concurrency::{Schedule, SegmentStop, VectorClock};
use esd::core::journal::{encode_frame, scan, JournalRecord};
use esd::ir::interp::{InterpreterConfig, MapInputs, SchedulerKind};
use esd::ir::printer::print_program;
use esd::ir::validate::validate;
use esd::ir::{BinOp, BlockId, CmpOp, Loc, ProgramBuilder};
use esd::ir::{Interpreter, ThreadId};
use esd::service::wire::{
    decode_request, decode_response, encode_frame as encode_wire_frame, encode_request,
    encode_response, FrameDecoder, WireRequest, WireResponse,
};
use esd::symex::{ExecState, RaceDetector, Solver, SolverConfig, SymExpr, SymVar};
use esd::workloads::genbug::{generate, GenConfig, GenSize, InjectedBugKind, ScheduleHint};
use esd::{EsdOptions, SynthesisSession};
use proptest::prelude::*;

proptest! {
    /// The solver never returns a model that violates the constraints it was
    /// given (soundness): whatever assignment comes back must satisfy every
    /// constraint under concrete evaluation.
    #[test]
    fn solver_models_always_satisfy_their_constraints(
        bounds in proptest::collection::vec((0u32..4, 0i64..100, 0usize..6), 1..6)
    ) {
        let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
        let constraints: Vec<_> = bounds
            .iter()
            .map(|(var, k, op)| SymExpr::cmp(ops[*op], SymExpr::var(SymVar(*var)), SymExpr::constant(*k)))
            .collect();
        let mut solver = Solver::new(SolverConfig::default());
        if let esd::symex::SolverResult::Sat(model) = solver.solve(&constraints) {
            for c in &constraints {
                prop_assert_ne!(c.eval(&model), 0, "model must satisfy every constraint");
            }
        }
    }

    /// Schedules preserve the total number of counted steps under the
    /// merge-on-push normalization.
    #[test]
    fn schedule_push_preserves_counted_steps(segs in proptest::collection::vec((0u32..3, 1u64..50), 0..40)) {
        let mut schedule = Schedule::new();
        let mut expected = 0u64;
        for (t, n) in &segs {
            schedule.push(*t, SegmentStop::Steps(*n));
            expected += n;
        }
        prop_assert_eq!(schedule.counted_steps(), expected);
        // Merging never produces two adjacent Steps segments of the same thread.
        for w in schedule.segments.windows(2) {
            let same_thread = w[0].thread == w[1].thread;
            let both_steps = matches!(w[0].stop, SegmentStop::Steps(_)) && matches!(w[1].stop, SegmentStop::Steps(_));
            prop_assert!(!(same_thread && both_steps));
        }
    }

    /// Vector-clock happens-before is antisymmetric and consistent with joins.
    #[test]
    fn vector_clock_partial_order(ticks in proptest::collection::vec((0usize..3, 1u8..4), 1..20)) {
        let mut a = VectorClock::new();
        for (t, n) in &ticks {
            for _ in 0..*n {
                a.tick(*t);
            }
        }
        let mut b = a.clone();
        b.tick(0);
        prop_assert!(a.happens_before(&b));
        prop_assert!(!b.happens_before(&a));
        let mut c = VectorClock::new();
        c.tick(1);
        c.join(&b);
        prop_assert!(a.happens_before(&c));
    }

    /// Forked execution states carry independent concurrency analysis:
    /// cloning an `ExecState` and advancing the clone's lockset/race state
    /// never mutates the parent's — in either direction — no matter what
    /// access sequence each side performs (the ROADMAP-tracked
    /// sibling-suppression bug, stated as a property).
    #[test]
    fn forked_state_race_analysis_never_leaks_into_the_parent(
        prefix in proptest::collection::vec((0u64..4, 0u32..3, 0u64..30, 0u64..4), 0..20),
        suffix in proptest::collection::vec((0u64..4, 0u32..3, 0u64..30, 0u64..4), 1..40),
    ) {
        let mut pb = ProgramBuilder::new("tiny");
        pb.function("main", 0, |f| {
            f.nop();
            f.ret_void();
        });
        let program = pb.finish("main");
        let entry = program.entry;
        // (word, thread, site, flags): bit 0 = write, bit 1 = lock held.
        let access = |d: &mut RaceDetector, (w, t, a, fl): (u64, u32, u64, u64)| {
            let held: &[(u64, i64)] = if fl & 2 != 0 { &[(9, 0)] } else { &[] };
            d.access((w, 0), t, Loc::new(entry, BlockId(a as u32), 0), fl & 1 != 0, held);
        };
        let mut parent = ExecState::initial(&program);
        for a in &prefix {
            access(&mut parent.race_detector, *a);
        }
        let snapshot = parent.race_detector.clone();
        let mut child = parent.clone();
        for a in &suffix {
            access(&mut child.race_detector, *a);
        }
        // The child advanced; the parent must be bit-for-bit where it was.
        prop_assert!(parent.race_detector == snapshot, "child accesses leaked into the parent");
        prop_assert_eq!(parent.race_detector.reported_pairs(), snapshot.reported_pairs());
        // And the reverse: advancing the parent leaves the child untouched.
        let child_snapshot = child.race_detector.clone();
        for a in &suffix {
            access(&mut parent.race_detector, *a);
        }
        prop_assert!(child.race_detector == child_snapshot, "parent accesses leaked into the child");
    }

    /// The bug generator only emits well-formed programs: for arbitrary
    /// seeds, bug kinds and size knobs (including degenerate zero sizes,
    /// which the generator clamps), the generated program passes full IR
    /// validation — no dangling block references, every function's entry
    /// reachable, every register defined.
    #[test]
    fn generated_programs_always_pass_ir_validation(
        seed in 0u64..1_000_000_000,
        kind_idx in 0usize..4,
        dims in (0u32..12, 0u32..32, 0u32..12, 0u32..12, 0u32..12),
    ) {
        let (inputs, branches, loop_iters, threads, locks) = dims;
        let config = GenConfig {
            seed,
            kind: InjectedBugKind::ALL[kind_idx],
            size: GenSize { inputs, branches, loop_iters, threads, locks },
        };
        let w = generate(&config);
        prop_assert!(
            validate(&w.program).is_ok(),
            "{}: generated program must validate", w.name
        );
        prop_assert!(!w.truth.goal_locs.is_empty(), "{}: ground truth has a goal", w.name);
    }

    /// The static phase is *sound* on the generated corpus: branch
    /// feasibility verdicts only ever remove edges that are infeasible for
    /// every input, so the blocks holding the injected bug stay reachable
    /// when each function's CFG is restricted to the edges the verdicts
    /// keep. An `AlwaysFalse` on the guard of the bug path would make the
    /// injected failure unsynthesizable under pruning — exactly the outcome
    /// the engine's `static_pruning` option must never produce.
    #[test]
    fn feasibility_verdicts_never_rule_out_the_injected_bug(
        seed in 0u64..1_000_000_000,
        kind_idx in 0usize..4,
        dims in (0u32..12, 0u32..32, 0u32..12, 0u32..12, 0u32..12),
    ) {
        use esd::analysis::{BranchFeasibility, CallGraph, Cfg, Feasibility};
        use esd::ir::inst::Terminator;

        let (inputs, branches, loop_iters, threads, locks) = dims;
        let config = GenConfig {
            seed,
            kind: InjectedBugKind::ALL[kind_idx],
            size: GenSize { inputs, branches, loop_iters, threads, locks },
        };
        let w = generate(&config);
        let program = &w.program;
        let cfgs: Vec<Cfg> =
            program.func_ids().map(|f| Cfg::build(program.func(f), f)).collect();
        let callgraph = CallGraph::build(program);
        let feasibility = BranchFeasibility::compute(program, &cfgs, &callgraph);

        for goal in &w.truth.goal_locs {
            // Reachability from the goal function's entry, walking only the
            // CFG edges a pruning stepper would still take.
            let func = program.func(goal.func);
            let mut seen = vec![false; func.blocks.len()];
            let mut stack = vec![BlockId(0)];
            while let Some(b) = stack.pop() {
                if std::mem::replace(&mut seen[b.0 as usize], true) {
                    continue;
                }
                let next: Vec<BlockId> = match &func.blocks[b.0 as usize].term {
                    Terminator::CondBr { then_bb, else_bb, .. } => {
                        match feasibility.verdict(goal.func, b) {
                            Feasibility::AlwaysTrue => vec![*then_bb],
                            Feasibility::AlwaysFalse => vec![*else_bb],
                            Feasibility::Unknown => vec![*then_bb, *else_bb],
                        }
                    }
                    t => t.successors(),
                };
                stack.extend(next);
            }
            prop_assert!(
                seen[goal.block.0 as usize],
                "{}: the injected bug block {:?} was pruned away by the \
                 feasibility verdicts (seed {seed})",
                w.name, goal
            );
        }
    }

    /// The static race-pair candidate set is *sound* on the generated
    /// corpus: whatever the generator dimensions, both instructions of an
    /// injected data race land in the candidate set — and one candidate
    /// pair covers exactly the injected pair — so candidate-gated preemption
    /// pruning (`EsdOptions::race_candidate_pruning`) can never make the
    /// injected race unsynthesizable.
    #[test]
    fn injected_data_races_always_appear_in_the_candidate_set(
        seed in 0u64..1_000_000_000,
        dims in (0u32..12, 0u32..32, 0u32..12, 0u32..12, 0u32..12),
    ) {
        use esd::analysis::StaticAnalysis;

        let (inputs, branches, loop_iters, threads, locks) = dims;
        let config = GenConfig {
            seed,
            kind: InjectedBugKind::DataRace,
            size: GenSize { inputs, branches, loop_iters, threads, locks },
        };
        let w = generate(&config);
        let analysis = StaticAnalysis::compute_multi(&w.program, &w.truth.goal_locs);
        let rc = &analysis.race_candidates;
        let (load, store) = match w.truth.schedule_hint {
            ScheduleHint::PreemptBetween { load, store } => (load, store),
            ref other => panic!("{}: DataRace ground truth carries {other:?}", w.name),
        };
        prop_assert!(
            rc.is_candidate_access(load),
            "{}: the injected racy load {load:?} is not a candidate access (seed {seed})",
            w.name
        );
        prop_assert!(
            rc.is_candidate_access(store),
            "{}: the injected racy store {store:?} is not a candidate access (seed {seed})",
            w.name
        );
        prop_assert!(
            rc.candidates.iter().any(|c| {
                (c.access_a == load || c.access_a == store)
                    && (c.access_b == load || c.access_b == store)
            }),
            "{}: no candidate pair covers the injected load/store pair (seed {seed})",
            w.name
        );
    }

    /// Generator determinism, as a property: the same `(seed, kind, size)`
    /// always produces a byte-identical serialized program and the same
    /// ground truth. (A checked-in golden fixture pins the concrete bytes
    /// across releases in `tests/golden_genbug.rs`.)
    #[test]
    fn generator_is_deterministic_per_seed(
        seed in 0u64..1_000_000_000,
        kind_idx in 0usize..4,
        branches in 0u32..24,
    ) {
        let config = GenConfig {
            seed,
            kind: InjectedBugKind::ALL[kind_idx],
            size: GenSize { branches, ..GenSize::small() },
        };
        let a = generate(&config);
        let b = generate(&config);
        prop_assert_eq!(print_program(&a.program), print_program(&b.program));
        prop_assert_eq!(a.truth.goal_locs, b.truth.goal_locs);
        prop_assert_eq!(a.truth.triggering_inputs, b.truth.triggering_inputs);
        prop_assert_eq!(a.name, b.name);
    }

    /// A restored session is indistinguishable from the one that wrote the
    /// snapshot: snapshot → restore → snapshot reproduces byte-identical
    /// serialized state for arbitrary workloads and interruption points.
    /// Only the wall-clock `elapsed` field is excluded — it keeps advancing
    /// between the two snapshot calls by construction.
    #[test]
    fn session_snapshot_round_trip_is_byte_identical(
        seed in 0u64..1_000_000,
        kind_idx in 0usize..4,
        rounds in 0u64..60,
    ) {
        let w = generate(&GenConfig::new(seed, InjectedBugKind::ALL[kind_idx])).to_workload();
        let mut session =
            EsdOptions::builder().max_steps(100_000).session(&w.program, w.goal());
        session.run_for(rounds);
        let snap = session.snapshot();
        let mut again = SynthesisSession::restore(&snap).snapshot();
        again.elapsed = snap.elapsed;
        prop_assert_eq!(
            serde_json::to_string(&snap).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
    }

    /// Journal scanning is total: truncating a valid journal at any byte
    /// offset, or flipping any single bit, yields the longest valid prefix
    /// of the original records — and never panics.
    #[test]
    fn journal_scan_survives_arbitrary_corruption(
        grants in proptest::collection::vec((0u64..8, 1u64..512), 1..20),
        cut in 0usize..100_000,
        flip_at in 0usize..100_000,
        flip_bit in 0u32..8,
    ) {
        let records: Vec<JournalRecord> = grants
            .iter()
            .map(|(h, r)| JournalRecord::SliceGrant { handle: *h, rounds: *r })
            .collect();
        let frames: Vec<Vec<u8>> = records.iter().map(encode_frame).collect();
        let bytes: Vec<u8> = frames.concat();

        // A clean journal reads back completely.
        let clean = scan(&bytes);
        prop_assert_eq!(clean.records.len(), records.len());
        prop_assert!(clean.damage.is_none());
        prop_assert_eq!(clean.valid_len, bytes.len());

        // Truncation at an arbitrary offset: exactly the fully-framed
        // prefix survives, and valid_len points at its end.
        let cut = cut % (bytes.len() + 1);
        let truncated = scan(&bytes[..cut]);
        let mut consumed = 0usize;
        for (r, orig) in truncated.records.iter().zip(&frames) {
            prop_assert_eq!(&encode_frame(r), orig);
            consumed += orig.len();
        }
        prop_assert_eq!(truncated.valid_len, consumed);
        prop_assert!(consumed <= cut);

        // A single flipped bit: still a valid prefix of the originals.
        let mut mangled = bytes.clone();
        let at = flip_at % mangled.len();
        mangled[at] ^= 1 << flip_bit;
        let scanned = scan(&mangled);
        for (r, orig) in scanned.records.iter().zip(&frames) {
            prop_assert_eq!(&encode_frame(r), orig);
        }
        // Re-scanning the reported valid prefix is clean — recovery can
        // truncate to valid_len and trust what remains.
        let again = scan(&mangled[..scanned.valid_len]);
        prop_assert!(again.damage.is_none());
        prop_assert_eq!(again.records.len(), scanned.records.len());
    }

    /// Wire round-trip: arbitrary request/response conversations encoded as
    /// frames survive an incremental decoder fed in arbitrary chunk sizes —
    /// every message decodes, in order, to something that re-encodes to the
    /// original bytes.
    #[test]
    fn wire_messages_round_trip_through_arbitrary_chunking(
        picks in proptest::collection::vec((0usize..10, 0u64..1000), 1..20),
        chunk in 1usize..64,
    ) {
        let messages: Vec<(Vec<u8>, bool)> = picks
            .iter()
            .map(|&(which, n)| match which {
                0 => (encode_request(&WireRequest::Poll { ticket: n }), true),
                1 => (encode_request(&WireRequest::Cancel { ticket: n }), true),
                2 => (encode_request(&WireRequest::Take { ticket: n }), true),
                3 => (encode_request(&WireRequest::Subscribe { ticket: n }), true),
                4 => (encode_request(&WireRequest::Shutdown), true),
                5 => (encode_response(&WireResponse::Ticket { ticket: n }), false),
                6 => (encode_response(&WireResponse::Status { status: wire_status(n) }), false),
                7 => (encode_response(&WireResponse::Cancelled { cancelled: n.is_multiple_of(2) }), false),
                8 => (encode_response(&WireResponse::Error { error: wire_error(n) }), false),
                _ => (encode_response(&WireResponse::Bye), false),
            })
            .collect();
        let bytes: Vec<u8> = messages.iter().flat_map(|(b, _)| b.clone()).collect();

        let mut decoder = FrameDecoder::new();
        let mut decoded: Vec<Vec<u8>> = Vec::new();
        for piece in bytes.chunks(chunk) {
            decoder.feed(piece);
            while let Some(frame) = decoder.next_frame().expect("clean stream never errors") {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded.len(), messages.len());
        for (payload, (original, is_request)) in decoded.iter().zip(&messages) {
            let reencoded = if *is_request {
                encode_request(&decode_request(payload).expect("request decodes"))
            } else {
                encode_response(&decode_response(payload).expect("response decodes"))
            };
            prop_assert_eq!(&reencoded, original, "decode∘encode must be the identity");
        }
    }

    /// Wire decoding is total: flipping any single bit of a framed stream,
    /// or truncating it anywhere, yields typed errors or a wait for more
    /// bytes — never a panic — and every frame delivered before the damage
    /// point is unaltered.
    #[test]
    fn wire_decoder_survives_arbitrary_corruption(
        picks in proptest::collection::vec(0u64..1000, 1..10),
        cut in 0usize..100_000,
        flip_at in 0usize..100_000,
        flip_bit in 0u32..8,
    ) {
        let frames: Vec<Vec<u8>> = picks
            .iter()
            .map(|&n| encode_response(&WireResponse::Status { status: wire_status(n) }))
            .collect();
        let bytes: Vec<u8> = frames.concat();

        // Truncation: the fully-framed prefix decodes, the tail waits.
        let cut = cut % (bytes.len() + 1);
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes[..cut]);
        let mut seen = 0usize;
        while let Some(payload) = decoder.next_frame().expect("truncation is never corruption") {
            prop_assert_eq!(
                encode_wire_frame(&payload).as_slice(),
                frames[seen].as_slice(),
                "prefix frames must be unaltered"
            );
            seen += 1;
        }

        // A single flipped bit: frames before the damage are unaltered,
        // and the stream ends in a typed error or a clean/waiting state —
        // no panic, no silently altered message.
        let mut mangled = bytes.clone();
        let at = flip_at % mangled.len();
        mangled[at] ^= 1 << flip_bit;
        let mut decoder = FrameDecoder::new();
        decoder.feed(&mangled);
        let mut offset = 0usize;
        loop {
            match decoder.next_frame() {
                Ok(Some(payload)) => {
                    let reframed = encode_wire_frame(&payload);
                    if at >= offset && at < offset + reframed.len() {
                        // The flip landed inside this frame yet the checksum
                        // passed: FNV-1a caught nothing only if the payload
                        // decodes to a message re-encoding to these bytes —
                        // a semantic no-op is impossible for a 1-bit flip,
                        // so this frame must fail to parse as a message.
                        prop_assert!(
                            decode_response(&payload).is_err(),
                            "a bit flip inside a frame must not yield a valid message"
                        );
                    } else {
                        prop_assert_eq!(
                            reframed.as_slice(),
                            &mangled[offset..offset + reframed.len()],
                            "frames outside the damage must be unaltered"
                        );
                    }
                    offset += reframed.len();
                }
                Ok(None) => break,   // waiting for bytes that will never come
                Err(esd::ServiceError::Protocol { .. }) => break,
                Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
            }
        }
    }

    /// The concrete interpreter is deterministic: same program, same inputs,
    /// same scheduler seed ⇒ identical output and step count.
    #[test]
    fn interpreter_is_deterministic(x in 0i64..200, y in 0i64..200, seed in 0u64..32) {
        let mut pb = ProgramBuilder::new("det");
        pb.function("main", 0, |f| {
            let a = f.getchar();
            let b = f.getchar();
            let s = f.bin(BinOp::Add, a, b);
            let big = f.cmp(CmpOp::Gt, s, 100);
            let t = f.new_block("t");
            let e = f.new_block("e");
            f.cond_br(big, t, e);
            f.switch_to(t);
            f.output(1);
            f.ret_void();
            f.switch_to(e);
            f.output(0);
            f.ret_void();
        });
        let p = pb.finish("main");
        let run = || {
            let inputs = MapInputs::from_entries([((ThreadId(0), 0), x), ((ThreadId(0), 1), y)]);
            let mut i = Interpreter::new(&p, Box::new(inputs));
            let r = i.run(&InterpreterConfig { scheduler: SchedulerKind::Random { seed }, ..Default::default() });
            (r.output.clone(), r.steps)
        };
        prop_assert_eq!(run(), run());
    }
}

/// One of each `JobStatus` shape, chosen by `n`, with `n`-derived payloads.
fn wire_status(n: u64) -> esd::JobStatus {
    match n % 4 {
        0 => esd::JobStatus::Queued,
        1 => esd::JobStatus::Running {
            progress: esd::JobProgress {
                slices: n,
                rounds: n * 3,
                steps: n * 7,
                live_states: n % 17,
                best_proximity: if n.is_multiple_of(2) { Some(n % 31) } else { None },
            },
        },
        2 => esd::JobStatus::Finished {
            verdict: if n.is_multiple_of(2) {
                esd::JobVerdict::Found
            } else {
                esd::JobVerdict::Unsatisfied
            },
        },
        _ => esd::JobStatus::Cancelled,
    }
}

/// One of each `ServiceError` shape, chosen by `n`.
fn wire_error(n: u64) -> esd::ServiceError {
    match n % 5 {
        0 => esd::ServiceError::Overloaded { retry_after_slices: n },
        1 => esd::ServiceError::UnknownTicket { ticket: n },
        2 => esd::ServiceError::Transport { detail: format!("transport #{n}") },
        3 => esd::ServiceError::Protocol { detail: format!("protocol #{n}") },
        _ => esd::ServiceError::Disconnected,
    }
}
