//! Golden test for the durable session snapshot format
//! (`esd-core/src/snapshot.rs` + `esd-core/src/session.rs`).
//!
//! A sealed [`SessionSnapshot`] of a mid-search session is checked in under
//! `tests/fixtures/`. It must keep unsealing, deserializing and restoring,
//! so any change to the envelope (`format_version`, checksum) or to the
//! snapshot payload — field renames, engine-state encoding, RNG state — is
//! caught here instead of silently orphaning snapshots written by earlier
//! builds.
//!
//! If the format changes *intentionally*, bump
//! [`SNAPSHOT_FORMAT_VERSION`], regenerate with
//!
//! ```text
//! ESD_REGEN_GOLDEN=1 cargo test --test golden_snapshot
//! ```
//!
//! and commit the new fixture together with the format change.

use esd::core::snapshot::{seal, unseal, SnapshotError, SNAPSHOT_FORMAT_VERSION};
use esd::core::SessionSnapshot;
use esd::workloads::genbug::{generate, GenConfig, InjectedBugKind};
use esd::{EsdOptions, SessionStatus, SynthesisSession};
use std::time::Duration;

const FIXTURE: &str = include_str!("fixtures/session_snapshot.json");

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/session_snapshot.json")
}

fn regen_requested() -> bool {
    std::env::var("ESD_REGEN_GOLDEN").ok().as_deref() == Some("1")
}

/// The fixture recipe: the seed-2 genbug crash workload (the smoke-corpus
/// seed also pinned by `golden_genbug`) advanced 10 rounds, with the
/// wall-clock `elapsed` zeroed so the fixture bytes are reproducible.
fn fixture_snapshot() -> SessionSnapshot {
    let w = generate(&GenConfig::new(2, InjectedBugKind::CrashOnPath)).to_workload();
    let mut session = EsdOptions::builder().max_steps(2_000_000).session(&w.program, w.goal());
    session.run_for(10);
    let mut snap = session.snapshot();
    snap.elapsed = Duration::ZERO;
    snap
}

/// Regenerates the fixture (only when `ESD_REGEN_GOLDEN=1`); run this before
/// the read-only golden tests in the same invocation.
#[test]
fn a_regenerate_fixture_when_requested() {
    if !regen_requested() {
        return;
    }
    let payload = serde_json::to_string(&fixture_snapshot()).expect("snapshot serializes");
    let mut sealed = seal(&payload);
    sealed.push('\n');
    std::fs::write(fixture_path(), sealed).expect("fixture written");
}

/// Golden determinism of the snapshot payload: re-running the fixture
/// recipe must reproduce the checked-in payload byte for byte.
#[test]
fn golden_snapshot_payload_matches_fresh_session() {
    if regen_requested() {
        return;
    }
    let payload = unseal(FIXTURE.trim_end()).expect("fixture envelope unseals");
    let fresh = serde_json::to_string(&fixture_snapshot()).expect("snapshot serializes");
    assert_eq!(
        fresh, payload,
        "the session snapshot format (or search determinism) drifted — if \
         intentional, regenerate with ESD_REGEN_GOLDEN=1 and bump \
         SNAPSHOT_FORMAT_VERSION if old snapshots can no longer be read"
    );
}

/// The checked-in snapshot still restores to a working session: the
/// restored search runs to completion and synthesizes the injected bug.
#[test]
fn golden_snapshot_restores_to_a_live_session() {
    if regen_requested() {
        return;
    }
    let payload = unseal(FIXTURE.trim_end()).expect("fixture envelope unseals");
    let snap: SessionSnapshot = serde_json::from_str(&payload).expect("fixture deserializes");
    let mut session = SynthesisSession::restore(&snap);
    while session.poll().is_running() {
        session.run_for(1000);
    }
    assert!(
        matches!(session.poll(), SessionStatus::Found(_)),
        "the restored session must still find the injected bug"
    );
}

/// The envelope as written on disk; mirrored here so the test can bump the
/// version field without depending on the envelope's exact text rendering.
#[derive(serde::Serialize, serde::Deserialize)]
struct RawEnvelope {
    format_version: u32,
    checksum: u64,
    payload: String,
}

/// Snapshots from a future format version fail with the typed
/// [`SnapshotError::UnknownVersion`] — never a checksum error, a decode
/// error or a panic (the version gate runs before everything else).
#[test]
fn future_format_versions_are_rejected_with_a_typed_error() {
    let mut envelope: RawEnvelope =
        serde_json::from_str(FIXTURE.trim_end()).expect("fixture envelope parses");
    assert_eq!(envelope.format_version, SNAPSHOT_FORMAT_VERSION);
    envelope.format_version = SNAPSHOT_FORMAT_VERSION + 1;
    let bad = serde_json::to_string(&envelope).expect("envelope serializes");
    assert_eq!(
        unseal(&bad),
        Err(SnapshotError::UnknownVersion(SNAPSHOT_FORMAT_VERSION + 1)),
        "a bumped format version must be the reported error"
    );
}
