//! Cross-crate integration tests: the full pipeline from a production failure
//! to a deterministic replay, for representative workloads of each bug class.

use esd::core::BugReport;
use esd::playback::play;
use esd::workloads::{all_real_bugs, capture_coredump, WorkloadKind};
use esd::EsdOptions;

/// Crashes: coredump → goal extraction → synthesis → playback, end to end.
#[test]
fn crash_workloads_roundtrip_from_coredump_to_replay() {
    let esd = EsdOptions::builder().max_steps(4_000_000).synthesizer();
    for w in all_real_bugs() {
        if w.kind != WorkloadKind::Crash {
            continue;
        }
        let dump = capture_coredump(&w, 5)
            .unwrap_or_else(|| panic!("{}: failure must be reproducible at the user site", w.name));
        let report = esd
            .synthesize(&w.program, &BugReport::from_coredump(dump))
            .unwrap_or_else(|e| panic!("{}: synthesis failed: {:?}", w.name, e));
        let replay = play(&w.program, &report.execution);
        assert!(replay.reproduced, "{}: playback must reproduce the failure", w.name);
    }
}

/// Deadlocks: synthesis from the reported goal and deterministic replay.
#[test]
fn deadlock_workloads_synthesize_and_replay() {
    let esd = EsdOptions::builder().max_steps(6_000_000).synthesizer();
    for w in all_real_bugs() {
        if w.kind != WorkloadKind::Hang {
            continue;
        }
        let report = esd
            .synthesize_goal(&w.program, w.goal(), false)
            .unwrap_or_else(|e| panic!("{}: synthesis failed: {:?}", w.name, e));
        assert_eq!(report.execution.fault_tag, "deadlock", "{}", w.name);
        for _ in 0..2 {
            let replay = play(&w.program, &report.execution);
            assert!(replay.reproduced, "{}: deadlock must replay deterministically", w.name);
        }
    }
}

/// The synthesized execution file survives a serialization round trip and
/// still replays.
#[test]
fn execution_files_replay_after_json_roundtrip() {
    let esd = EsdOptions::builder().max_steps(2_000_000).synthesizer();
    let w = esd::workloads::real_bugs::paste_invalid_free();
    let report = esd.synthesize_goal(&w.program, w.goal(), false).unwrap();
    let json = report.execution.to_json();
    let restored = esd::core::SynthesizedExecution::from_json(&json).unwrap();
    assert!(play(&w.program, &restored).reproduced);
}
