//! Golden test pinning the bug generator's output across releases.
//!
//! `tests/properties.rs` proves the generator is deterministic *within* a
//! build; this fixture pins the concrete bytes *across* builds, so an
//! accidental change to the generator (a reordered RNG draw, a renamed
//! block, a new instruction in the skeleton) is caught as a diff instead of
//! silently invalidating every seed-addressed corpus reference — the whole
//! point of describing a corpus by its seeds.
//!
//! If the generator changes *intentionally*, regenerate with
//!
//! ```text
//! ESD_REGEN_GOLDEN=1 cargo test --test golden_genbug
//! ```
//!
//! and commit the new fixture together with the generator change.

use esd::ir::printer::print_program;
use esd::workloads::genbug::{generate, GenConfig, InjectedBugKind};

const FIXTURE: &str = include_str!("fixtures/genbug_seed2.ir");

/// The fixture seed. Seed 2 is also the first smoke-corpus seed, so the
/// frozen programs are exactly the ones the differential harness exercises.
const SEED: u64 = 2;

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/genbug_seed2.ir")
}

fn regen_requested() -> bool {
    std::env::var("ESD_REGEN_GOLDEN").ok().as_deref() == Some("1")
}

/// All four kinds at the fixture seed, concatenated in `ALL` order with a
/// header line per program.
fn render_corpus() -> String {
    let mut out = String::new();
    for kind in InjectedBugKind::ALL {
        let w = generate(&GenConfig::new(SEED, kind));
        out.push_str(&format!("=== {} ===\n", w.name));
        out.push_str(&print_program(&w.program));
        out.push('\n');
    }
    out
}

/// Regenerates the fixture (only when `ESD_REGEN_GOLDEN=1`); alphabetically
/// first so a regeneration run rewrites before the read-only checks.
#[test]
fn a_regenerate_fixture_when_requested() {
    if !regen_requested() {
        return;
    }
    std::fs::write(fixture_path(), render_corpus()).expect("fixture written");
}

/// The generator reproduces the checked-in serialization byte for byte, for
/// every bug kind at the fixture seed.
#[test]
fn generated_programs_match_the_checked_in_fixture() {
    if regen_requested() {
        // The in-memory FIXTURE constant is stale during a regeneration run.
        return;
    }
    assert_eq!(
        render_corpus(),
        FIXTURE,
        "the generator's output for seed {SEED} drifted from the checked-in \
         fixture; if the change is intentional, regenerate with \
         ESD_REGEN_GOLDEN=1 cargo test --test golden_genbug"
    );
}

/// The fixture carries all four kinds (guards against a truncated
/// regeneration).
#[test]
fn fixture_covers_every_bug_kind() {
    if regen_requested() {
        return;
    }
    for kind in InjectedBugKind::ALL {
        let header = format!("=== genbug_{}_s{SEED}_", kind.slug());
        assert!(FIXTURE.contains(&header), "fixture is missing the {kind} program");
    }
}
