//! Golden test pinning the `irlint` corpus sweep's rendered output.
//!
//! The lint lineup, the diagnostic ordering and the rendered text are all
//! part of the CI `lint-gate` contract: a reordered pass, a reworded
//! message or a drifted workload program shows up here as a byte diff
//! instead of silently changing what the gate enforces.
//!
//! If the lints or the corpus change *intentionally*, regenerate with
//!
//! ```text
//! ESD_REGEN_GOLDEN=1 cargo test --test irlint_golden
//! ```
//!
//! and commit the new fixture together with the change.

use esd_bench::irlint_report;

const FIXTURE: &str = include_str!("fixtures/irlint_golden.txt");

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/irlint_golden.txt")
}

fn regen_requested() -> bool {
    std::env::var("ESD_REGEN_GOLDEN").ok().as_deref() == Some("1")
}

/// Regenerates the fixture (only when `ESD_REGEN_GOLDEN=1`); alphabetically
/// first so a regeneration run rewrites before the read-only checks.
#[test]
fn a_regenerate_fixture_when_requested() {
    if !regen_requested() {
        return;
    }
    std::fs::write(fixture_path(), irlint_report().text).expect("fixture written");
}

/// The sweep reproduces the checked-in rendering byte for byte.
#[test]
fn irlint_output_matches_the_checked_in_fixture() {
    if regen_requested() {
        // The in-memory FIXTURE constant is stale during a regeneration run.
        return;
    }
    assert_eq!(
        irlint_report().text,
        FIXTURE,
        "the irlint corpus sweep drifted from the checked-in fixture; if the \
         change is intentional, regenerate with \
         ESD_REGEN_GOLDEN=1 cargo test --test irlint_golden"
    );
}

/// The shipped corpus is and stays free of `Error`-severity diagnostics —
/// the same policy the CI `lint-gate` job enforces through the `irlint`
/// bin's exit code.
#[test]
fn corpus_carries_no_error_diagnostics() {
    let report = irlint_report();
    assert_eq!(report.errors, 0, "Error-severity lint diagnostics in the shipped corpus");
    assert!(report.programs >= 20, "the sweep covers the analogs and the smoke corpus");
}
