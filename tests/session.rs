//! Integration tests for the stepwise-session API redesign: slicing the
//! search must never change the synthesized execution, cancellation must
//! surface partial statistics, and a portfolio's winner must be exactly what
//! a solo run of the winning configuration produces.

use esd::playback::play;
use esd::workloads::{listing1, real_bugs::paste_invalid_free};
use esd::{Esd, EsdOptions, FrontierKind, Portfolio, SessionStatus};

/// The engine thread count under test: the CI determinism matrix sets
/// `ESD_THREADS` to 1, 2 and 8; locally the default exercises 4 workers.
fn env_threads() -> usize {
    std::env::var("ESD_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(4)
}

/// Golden determinism test of the multi-threaded beam engine: a `threads=N`
/// beam run must emit the byte-identical execution file of a `threads=1`
/// run, with identical search statistics — batches are merged in
/// deterministic batch order, so the thread count is unobservable.
#[test]
fn parallel_beam_matches_single_threaded_run() {
    let w = paste_invalid_free();
    let base =
        || EsdOptions::builder().max_steps(4_000_000).frontier(FrontierKind::Beam { width: 16 });
    let solo = Esd::new(base().threads(1).build())
        .synthesize_goal(&w.program, w.goal(), false)
        .expect("single-threaded beam synthesis succeeds");
    let threads = env_threads().max(2);
    let parallel = Esd::new(base().threads(threads).build())
        .synthesize_goal(&w.program, w.goal(), false)
        .expect("multi-threaded beam synthesis succeeds");

    assert_eq!(
        parallel.execution.to_json(),
        solo.execution.to_json(),
        "threads={threads} must emit the byte-identical execution file of threads=1"
    );
    assert_eq!(parallel.stats.steps, solo.stats.steps);
    assert_eq!(parallel.stats.states_created, solo.stats.states_created);
    assert_eq!(parallel.stats.states_pruned, solo.stats.states_pruned);
    assert_eq!(parallel.stats.solver_queries, solo.stats.solver_queries);
    assert!(play(&w.program, &parallel.execution).reproduced);
}

/// Determinism invariant of the tentpole: for a fixed seed, a session
/// advanced via `run_for(1)` slices yields byte-identical execution-file
/// JSON to the one-shot `Esd::synthesize_goal` — because the one-shot *is* a
/// loop over the same rounds.
#[test]
fn session_slicing_is_deterministic() {
    let w = paste_invalid_free();
    let options = EsdOptions::builder().max_steps(2_000_000).threads(env_threads()).build();

    let one_shot = Esd::new(options.clone())
        .synthesize_goal(&w.program, w.goal(), false)
        .expect("one-shot synthesis succeeds");

    let mut session = EsdOptions::builder()
        .max_steps(2_000_000)
        .threads(env_threads())
        .session(&w.program, w.goal());
    while session.poll().is_running() {
        session.run_for(1);
    }
    let stepped = session.poll().found().expect("stepped synthesis succeeds").clone();

    assert_eq!(
        stepped.execution.to_json(),
        one_shot.execution.to_json(),
        "single-round slicing must synthesize the identical execution file"
    );
    assert_eq!(stepped.stats.steps, one_shot.stats.steps);
    assert_eq!(stepped.stats.states_created, one_shot.stats.states_created);
    assert!(play(&w.program, &stepped.execution).reproduced);
}

/// Satellite of the static-pruning tentpole: sessions surface the static
/// phase's counters through [`esd::core::session::ProgressEvent`], the
/// counters move on a workload with a statically decidable branch
/// (`mkfifo`'s masked mode-range check), and switching pruning off zeroes
/// them while still synthesizing an execution that replays.
#[test]
fn progress_events_surface_static_pruning_counters() {
    let w = esd::workloads::all_real_bugs().into_iter().find(|w| w.name == "mkfifo").unwrap();
    let run = |pruning: bool| {
        let mut session = EsdOptions::builder()
            .max_steps(2_000_000)
            .static_pruning(pruning)
            .session(&w.program, w.goal());
        while session.poll().is_running() {
            session.run_for(64);
        }
        let event = session.progress_event();
        let report = session.poll().found().expect("mkfifo synthesizes").clone();
        (event, report)
    };

    let (on, found_on) = run(true);
    assert!(on.branches_pruned_static > 0, "mkfifo carries a statically decidable branch");
    assert!(on.solver_queries_saved >= on.branches_pruned_static);
    assert!(play(&w.program, &found_on.execution).reproduced);

    let (off, found_off) = run(false);
    assert_eq!(off.branches_pruned_static, 0, "pruning off must not prune");
    assert_eq!(off.solver_queries_saved, 0);
    assert!(play(&w.program, &found_off.execution).reproduced);
    assert_eq!(
        found_on.execution.to_json(),
        found_off.execution.to_json(),
        "static pruning must not change what is synthesized"
    );
}

/// Cancelling a running session keeps the partial `SearchStats` of the work
/// done so far.
#[test]
fn cancel_surfaces_partial_stats() {
    let w = listing1();
    let mut session = EsdOptions::builder().session(&w.program, w.goal());
    session.run_for(50);
    assert!(session.poll().is_running(), "listing1 takes more than 50 rounds");
    let stats = session.cancel();
    assert!(stats.steps > 0, "partial stats must reflect the 50 rounds");
    assert!(stats.states_created > 0);
    let status = session.poll();
    assert!(matches!(status, SessionStatus::Cancelled(_)));
    assert_eq!(status.stats().unwrap().steps, stats.steps);
}

/// The acceptance-criteria portfolio: racing {proximity, dfs, bfs, random,
/// beam} on a paper workload produces a winner whose execution replays, with
/// per-member statistics — and the winner's execution is byte-identical to a
/// solo run of the winning configuration.
#[test]
fn portfolio_winner_matches_the_solo_run() {
    let w = listing1();
    let base = EsdOptions::builder().max_steps(2_000_000).threads(env_threads()).build();
    let result = Portfolio::new(base.clone())
        .frontiers([
            FrontierKind::Proximity,
            FrontierKind::Dfs,
            FrontierKind::Bfs,
            FrontierKind::Random,
            FrontierKind::beam(),
        ])
        .slice_rounds(500)
        .run(&w.program, w.goal());

    let winner = result.winner.as_ref().expect("some frontier synthesizes the deadlock");
    assert!(
        play(&w.program, &winner.report.execution).reproduced,
        "the winning execution must replay"
    );
    // Every member reports its (partial or terminal) SearchStats.
    assert_eq!(result.members.len(), 5);
    for (i, member) in result.members.iter().enumerate() {
        if i == winner.member {
            assert_eq!(member.outcome, esd::core::MemberOutcome::Won, "{}", member.label);
            assert_eq!(member.stats.steps, winner.report.stats.steps);
        } else {
            assert_ne!(member.outcome, esd::core::MemberOutcome::Won, "{}", member.label);
            // Members that got at least one slice keep their partial stats.
            assert!(
                member.rounds == 0 || member.stats.steps > 0,
                "{}: non-winning members keep their partial stats",
                member.label
            );
        }
    }

    // The portfolio's time-slicing must not change the winner's trajectory:
    // a solo run of the winning configuration synthesizes the identical
    // execution file.
    let winning = &result.members[winner.member];
    let solo = Esd::new(EsdOptions { frontier: winning.frontier, seed: winning.seed, ..base })
        .synthesize_goal(&w.program, w.goal(), false)
        .expect("the winning configuration also wins solo");
    assert_eq!(
        winner.report.execution.to_json(),
        solo.execution.to_json(),
        "portfolio winner must equal the solo run of the same configuration"
    );
}
