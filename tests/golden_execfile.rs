//! Golden test for the execution-file JSON format (`esd-core/src/execfile.rs`).
//!
//! A synthesized execution for the `paste` invalid-free workload is checked
//! in under `tests/fixtures/`. It must keep deserializing and replaying, so
//! any change to the JSON format — field renames, enum tagging, schedule
//! encoding — is caught here instead of silently breaking saved execution
//! files in the field.
//!
//! If the format changes *intentionally*, regenerate the fixture with
//!
//! ```text
//! ESD_REGEN_GOLDEN=1 cargo test --test golden_execfile
//! ```
//!
//! and commit the new file together with the format change.

use esd::core::SynthesizedExecution;
use esd::playback::play;
use esd::workloads::real_bugs::paste_invalid_free;
use esd::{EsdOptions, FrontierKind};

const FIXTURE: &str = include_str!("fixtures/paste_execution.json");
const BEAM_FIXTURE: &str = include_str!("fixtures/paste_execution_beam.json");

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/paste_execution.json")
}

fn beam_fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/paste_execution_beam.json")
}

fn regen_requested() -> bool {
    std::env::var("ESD_REGEN_GOLDEN").ok().as_deref() == Some("1")
}

/// The engine thread count under test (the CI determinism matrix sets
/// `ESD_THREADS` to 1, 2 and 8; the local default exercises 4 workers).
fn env_threads() -> usize {
    std::env::var("ESD_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(4)
}

/// Whether the static feasibility pass is on for this run (the CI
/// determinism matrix pins one leg to `ESD_STATIC_PRUNING=0`; pruning must
/// never change what is synthesized, so every leg reproduces the same
/// fixtures).
fn env_static_pruning() -> bool {
    std::env::var("ESD_STATIC_PRUNING").ok().as_deref() != Some("0")
}

/// Whether race-preemption forks are bounded by the static race-pair
/// candidate set for this run (the CI determinism matrix pins one leg to
/// `ESD_RACE_CANDIDATES=0`; the gating must never change what is
/// synthesized, so every leg reproduces the same fixtures).
fn env_race_candidates() -> bool {
    std::env::var("ESD_RACE_CANDIDATES").ok().as_deref() != Some("0")
}

fn synthesize_beam(threads: usize) -> String {
    let w = paste_invalid_free();
    let esd = EsdOptions::builder()
        .max_steps(2_000_000)
        .frontier(FrontierKind::Beam { width: 16 })
        .threads(threads)
        .static_pruning(env_static_pruning())
        .race_candidate_pruning(env_race_candidates())
        .synthesizer();
    let report = esd.synthesize_goal(&w.program, w.goal(), false).expect("synthesis succeeds");
    let mut json = report.execution.to_json();
    json.push('\n');
    json
}

/// Regenerates the fixtures (only when `ESD_REGEN_GOLDEN=1`); run this before
/// the read-only golden tests in the same invocation.
#[test]
fn a_regenerate_fixture_when_requested() {
    if !regen_requested() {
        return;
    }
    let w = paste_invalid_free();
    let esd = EsdOptions::builder().max_steps(2_000_000).synthesizer();
    let report = esd.synthesize_goal(&w.program, w.goal(), false).expect("synthesis succeeds");
    let mut json = report.execution.to_json();
    json.push('\n');
    std::fs::write(fixture_path(), json).expect("fixture written");
    // The beam fixture is regenerated single-threaded — the matrix test
    // below proves every other thread count reproduces it.
    std::fs::write(beam_fixture_path(), synthesize_beam(1)).expect("beam fixture written");
}

/// Golden determinism of the multi-threaded beam engine: a fresh beam
/// synthesis at the matrix thread count (`ESD_THREADS`) must reproduce the
/// checked-in beam execution file byte for byte.
#[test]
fn golden_beam_execution_file_matches_fresh_synthesis_at_env_threads() {
    if regen_requested() {
        return;
    }
    let threads = env_threads();
    assert_eq!(
        synthesize_beam(threads),
        BEAM_FIXTURE,
        "a beam run at threads={threads} must reproduce the checked-in \
         execution file byte for byte (regenerate intentionally with \
         ESD_REGEN_GOLDEN=1 cargo test --test golden_execfile)"
    );
}

#[test]
fn golden_execution_file_deserializes() {
    if regen_requested() {
        // The in-memory FIXTURE constant is stale during a regeneration run.
        return;
    }
    let exec = SynthesizedExecution::from_json(FIXTURE).unwrap_or_else(|e| {
        panic!(
            "checked-in execution file no longer parses ({e}); if the JSON \
             format changed intentionally, regenerate with \
             ESD_REGEN_GOLDEN=1 cargo test --test golden_execfile"
        )
    });
    assert_eq!(exec.program, "paste");
    assert_eq!(exec.fault_tag, "invalid-free");
    assert!(!exec.inputs.is_empty(), "fixture carries concrete inputs");
    assert!(!exec.schedule.segments.is_empty(), "fixture carries a schedule");
}

#[test]
fn golden_execution_file_replays() {
    if regen_requested() {
        // The in-memory FIXTURE constant is stale during a regeneration run.
        return;
    }
    let exec = SynthesizedExecution::from_json(FIXTURE).expect("fixture parses");
    let w = paste_invalid_free();
    let replay = play(&w.program, &exec);
    assert!(
        replay.reproduced,
        "checked-in execution file must still reproduce the paste invalid free"
    );
}

/// The static feasibility pass never changes *what* is synthesized on the
/// golden workload: with pruning explicitly on and explicitly off, a fresh
/// proximity synthesis reproduces the checked-in execution file byte for
/// byte — the soundness contract of `EsdOptions::builder().static_pruning`.
#[test]
fn golden_execution_file_is_invariant_to_static_pruning() {
    if regen_requested() {
        return;
    }
    let w = paste_invalid_free();
    for pruning in [true, false] {
        let esd = EsdOptions::builder().max_steps(2_000_000).static_pruning(pruning).synthesizer();
        let report = esd.synthesize_goal(&w.program, w.goal(), false).expect("synthesis succeeds");
        assert_eq!(
            format!("{}\n", report.execution.to_json()),
            FIXTURE,
            "static_pruning({pruning}) must reproduce the checked-in execution \
             file byte for byte"
        );
    }
}

/// The static race-pair candidate set never changes *what* is synthesized
/// on race workloads: with candidate-gated preemption pruning explicitly on
/// and explicitly off, the racy-counter example (the PR-1 race running
/// example) and a genbug data-race program both synthesize byte-identical
/// execution files — the soundness contract of
/// `EsdOptions::builder().race_candidate_pruning`.
#[test]
fn race_execution_files_are_invariant_to_candidate_pruning() {
    use esd::ir::{CmpOp, Loc, ProgramBuilder};
    use esd::workloads::genbug::{generate, GenConfig, InjectedBugKind};
    use esd::GoalSpec;

    // The racy-counter program of `examples/race_debugging.rs`.
    let mut pb = ProgramBuilder::new("racy_counter");
    let counter = pb.global("counter", 1);
    let worker = pb.declare("worker", 1);
    pb.define(worker, |f| {
        let cp = f.addr_global(counter);
        let v = f.load(cp);
        f.yield_now();
        let v1 = f.add(v, 1);
        f.store(cp, v1);
        f.ret_void();
    });
    let mut assert_loc = None;
    let main_id = pb.declare("main", 0);
    pb.define(main_id, |f| {
        let t1 = f.spawn(worker, 1);
        let t2 = f.spawn(worker, 2);
        f.join(t1);
        f.join(t2);
        let cp = f.addr_global(counter);
        let v = f.load(cp);
        let ok = f.cmp(CmpOp::Eq, v, 2);
        assert_loc = Some(Loc::new(main_id, f.current_block(), f.next_inst_idx()));
        f.assert(ok, "both increments must be visible");
        f.ret_void();
    });
    let racy = pb.finish("main");
    let racy_goal = GoalSpec::Crash { loc: assert_loc.unwrap() };

    let mut baseline: Option<String> = None;
    for pruning in [true, false] {
        let esd = EsdOptions::builder()
            .max_steps(2_000_000)
            .with_race_detection(true)
            .race_candidate_pruning(pruning)
            .synthesizer();
        let report = esd
            .synthesize_goal(&racy, racy_goal.clone(), true)
            .unwrap_or_else(|e| panic!("racy_counter: race synthesis (pruning={pruning}): {e:?}"));
        let json = report.execution.to_json();
        match &baseline {
            None => baseline = Some(json),
            Some(expected) => assert_eq!(
                *expected, json,
                "racy_counter: race_candidate_pruning must not change the \
                 synthesized execution"
            ),
        }
    }

    // On the larger genbug program the unpruned search explores extra
    // preemption forks at thread-local yields, so a *different but equally
    // valid* interleaving can win — the contract there is ground-truth
    // equivalence plus a measurably smaller search, not byte equality.
    let genbug = generate(&GenConfig::new(2, InjectedBugKind::DataRace));
    let mut states = [0u64; 2];
    for (i, pruning) in [true, false].into_iter().enumerate() {
        let esd = EsdOptions::builder()
            .max_steps(2_000_000)
            .with_race_detection(true)
            .race_candidate_pruning(pruning)
            .synthesizer();
        let report =
            esd.synthesize_goal(&genbug.program, genbug.truth.goal.clone(), true).unwrap_or_else(
                |e| panic!("{}: race synthesis (pruning={pruning}): {e:?}", genbug.name),
            );
        genbug.truth.matches(&report.execution).unwrap_or_else(|e| {
            panic!("{}: pruning={pruning} missed the injected race: {e}", genbug.name)
        });
        states[i] = report.stats.states_created;
        if pruning {
            assert!(
                report.stats.preemptions_pruned_static > 0,
                "{}: candidate gating pruned no preemption forks",
                genbug.name
            );
        } else {
            assert_eq!(report.stats.preemptions_pruned_static, 0);
        }
    }
    assert!(
        states[0] < states[1],
        "{}: candidate gating must fork fewer states ({} vs {})",
        genbug.name,
        states[0],
        states[1]
    );
}

/// Serialization is deterministic and stable: writing the parsed fixture back
/// out reproduces the checked-in bytes exactly.
#[test]
fn golden_execution_file_roundtrips_byte_identical() {
    if regen_requested() {
        return;
    }
    let exec = SynthesizedExecution::from_json(FIXTURE).expect("fixture parses");
    assert_eq!(
        format!("{}\n", exec.to_json()),
        FIXTURE,
        "re-serializing the fixture must reproduce it byte for byte"
    );
}
