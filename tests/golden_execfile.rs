//! Golden test for the execution-file JSON format (`esd-core/src/execfile.rs`).
//!
//! A synthesized execution for the `paste` invalid-free workload is checked
//! in under `tests/fixtures/`. It must keep deserializing and replaying, so
//! any change to the JSON format — field renames, enum tagging, schedule
//! encoding — is caught here instead of silently breaking saved execution
//! files in the field.
//!
//! If the format changes *intentionally*, regenerate the fixture with
//!
//! ```text
//! ESD_REGEN_GOLDEN=1 cargo test --test golden_execfile
//! ```
//!
//! and commit the new file together with the format change.

use esd::core::SynthesizedExecution;
use esd::playback::play;
use esd::workloads::real_bugs::paste_invalid_free;
use esd::{EsdOptions, FrontierKind};

const FIXTURE: &str = include_str!("fixtures/paste_execution.json");
const BEAM_FIXTURE: &str = include_str!("fixtures/paste_execution_beam.json");

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/paste_execution.json")
}

fn beam_fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/paste_execution_beam.json")
}

fn regen_requested() -> bool {
    std::env::var("ESD_REGEN_GOLDEN").ok().as_deref() == Some("1")
}

/// The engine thread count under test (the CI determinism matrix sets
/// `ESD_THREADS` to 1, 2 and 8; the local default exercises 4 workers).
fn env_threads() -> usize {
    std::env::var("ESD_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(4)
}

/// Whether the static feasibility pass is on for this run (the CI
/// determinism matrix pins one leg to `ESD_STATIC_PRUNING=0`; pruning must
/// never change what is synthesized, so every leg reproduces the same
/// fixtures).
fn env_static_pruning() -> bool {
    std::env::var("ESD_STATIC_PRUNING").ok().as_deref() != Some("0")
}

fn synthesize_beam(threads: usize) -> String {
    let w = paste_invalid_free();
    let esd = EsdOptions::builder()
        .max_steps(2_000_000)
        .frontier(FrontierKind::Beam { width: 16 })
        .threads(threads)
        .static_pruning(env_static_pruning())
        .synthesizer();
    let report = esd.synthesize_goal(&w.program, w.goal(), false).expect("synthesis succeeds");
    let mut json = report.execution.to_json();
    json.push('\n');
    json
}

/// Regenerates the fixtures (only when `ESD_REGEN_GOLDEN=1`); run this before
/// the read-only golden tests in the same invocation.
#[test]
fn a_regenerate_fixture_when_requested() {
    if !regen_requested() {
        return;
    }
    let w = paste_invalid_free();
    let esd = EsdOptions::builder().max_steps(2_000_000).synthesizer();
    let report = esd.synthesize_goal(&w.program, w.goal(), false).expect("synthesis succeeds");
    let mut json = report.execution.to_json();
    json.push('\n');
    std::fs::write(fixture_path(), json).expect("fixture written");
    // The beam fixture is regenerated single-threaded — the matrix test
    // below proves every other thread count reproduces it.
    std::fs::write(beam_fixture_path(), synthesize_beam(1)).expect("beam fixture written");
}

/// Golden determinism of the multi-threaded beam engine: a fresh beam
/// synthesis at the matrix thread count (`ESD_THREADS`) must reproduce the
/// checked-in beam execution file byte for byte.
#[test]
fn golden_beam_execution_file_matches_fresh_synthesis_at_env_threads() {
    if regen_requested() {
        return;
    }
    let threads = env_threads();
    assert_eq!(
        synthesize_beam(threads),
        BEAM_FIXTURE,
        "a beam run at threads={threads} must reproduce the checked-in \
         execution file byte for byte (regenerate intentionally with \
         ESD_REGEN_GOLDEN=1 cargo test --test golden_execfile)"
    );
}

#[test]
fn golden_execution_file_deserializes() {
    if regen_requested() {
        // The in-memory FIXTURE constant is stale during a regeneration run.
        return;
    }
    let exec = SynthesizedExecution::from_json(FIXTURE).unwrap_or_else(|e| {
        panic!(
            "checked-in execution file no longer parses ({e}); if the JSON \
             format changed intentionally, regenerate with \
             ESD_REGEN_GOLDEN=1 cargo test --test golden_execfile"
        )
    });
    assert_eq!(exec.program, "paste");
    assert_eq!(exec.fault_tag, "invalid-free");
    assert!(!exec.inputs.is_empty(), "fixture carries concrete inputs");
    assert!(!exec.schedule.segments.is_empty(), "fixture carries a schedule");
}

#[test]
fn golden_execution_file_replays() {
    if regen_requested() {
        // The in-memory FIXTURE constant is stale during a regeneration run.
        return;
    }
    let exec = SynthesizedExecution::from_json(FIXTURE).expect("fixture parses");
    let w = paste_invalid_free();
    let replay = play(&w.program, &exec);
    assert!(
        replay.reproduced,
        "checked-in execution file must still reproduce the paste invalid free"
    );
}

/// The static feasibility pass never changes *what* is synthesized on the
/// golden workload: with pruning explicitly on and explicitly off, a fresh
/// proximity synthesis reproduces the checked-in execution file byte for
/// byte — the soundness contract of `EsdOptions::builder().static_pruning`.
#[test]
fn golden_execution_file_is_invariant_to_static_pruning() {
    if regen_requested() {
        return;
    }
    let w = paste_invalid_free();
    for pruning in [true, false] {
        let esd = EsdOptions::builder().max_steps(2_000_000).static_pruning(pruning).synthesizer();
        let report = esd.synthesize_goal(&w.program, w.goal(), false).expect("synthesis succeeds");
        assert_eq!(
            format!("{}\n", report.execution.to_json()),
            FIXTURE,
            "static_pruning({pruning}) must reproduce the checked-in execution \
             file byte for byte"
        );
    }
}

/// Serialization is deterministic and stable: writing the parsed fixture back
/// out reproduces the checked-in bytes exactly.
#[test]
fn golden_execution_file_roundtrips_byte_identical() {
    if regen_requested() {
        return;
    }
    let exec = SynthesizedExecution::from_json(FIXTURE).expect("fixture parses");
    assert_eq!(
        format!("{}\n", exec.to_json()),
        FIXTURE,
        "re-serializing the fixture must reproduce it byte for byte"
    );
}
